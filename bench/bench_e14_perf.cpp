// E14 — Engineering performance (google-benchmark): overlay construction,
// the flood kernel, full protocol runs on both tiers, and OpenMP trial
// throughput. Not a paper claim — this is the usual reference-vs-optimized
// kernel discipline for the simulator itself.
#include <benchmark/benchmark.h>
#include <omp.h>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void BM_OverlayBuild(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto overlay = make_overlay(n, 8, seed++);
    benchmark::DoNotOptimize(overlay.g().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OverlayBuild)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_FloodSubphase(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto overlay = make_overlay(n, 8, 42);
  const std::vector<bool> byz(n, false);
  const std::vector<bool> crashed(n, false);
  const proto::Verifier verifier(overlay, byz, {});
  proto::FloodWorkspace ws;
  sim::Instrumentation instr;
  std::vector<proto::Color> gen(n);
  util::Xoshiro256 rng(7);
  for (auto& c : gen) c = util::geometric_color(rng);
  proto::FloodParams params;
  params.steps = 6;
  for (auto _ : state) {
    proto::run_flood_subphase(overlay, byz, crashed, verifier, params, gen,
                              {}, ws, instr);
    benchmark::DoNotOptimize(ws.known.data());
  }
  state.SetItemsProcessed(state.iterations() * n * params.steps);
}
BENCHMARK(BM_FloodSubphase)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_Algo1FastPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto overlay = make_overlay(n, 8, 42);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto run = proto::run_basic_counting(overlay, seed++);
    benchmark::DoNotOptimize(run.estimate.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Algo1FastPath)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_Algo2FakeColor(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto overlay = make_overlay(n, 8, 42);
  const auto byz = place_byz(n, 0.5, 99);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    auto run = proto::run_counting(overlay, byz, *strat, cfg, seed++);
    benchmark::DoNotOptimize(run.estimate.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Algo2FakeColor)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_EngineReference(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto overlay = make_overlay(n, 6, 42);
  const auto byz = place_byz(n, 0.7, 99);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    sim::Engine engine(overlay, byz, *strat, cfg, seed++);
    auto run = engine.run();
    benchmark::DoNotOptimize(run.estimate.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineReference)->Arg(1 << 10)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_TrialThroughput(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  omp_set_num_threads(threads);
  sim::TrialConfig cfg;
  cfg.overlay.n = 1 << 12;
  cfg.overlay.d = 8;
  cfg.delta = 0.5;
  cfg.strategy = adv::StrategyKind::kFakeColor;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto results = sim::run_trials(cfg, 16);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_TrialThroughput)->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
