#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace byz::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

Table& Table::columns(std::vector<std::string> names) {
  if (!rows_.empty()) throw std::logic_error("Table: columns after rows");
  header_ = std::move(names);
  return *this;
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table: cell before row()");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned value) { return cell(std::to_string(value)); }

Table& Table::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  return widths;
}

void append_padded(std::string& out, const std::string& s, std::size_t width) {
  // Right-align numeric-looking cells, left-align text.
  const bool numeric =
      !s.empty() && (std::isdigit(static_cast<unsigned char>(s[0])) ||
                     s[0] == '-' || s[0] == '+' || s[0] == '.');
  if (numeric) {
    out.append(width - std::min(width, s.size()), ' ');
    out += s;
  } else {
    out += s;
    out.append(width - std::min(width, s.size()), ' ');
  }
}

}  // namespace

std::string Table::str() const {
  const auto widths = column_widths(header_, rows_);
  std::string out;
  out += "== " + title_ + " ==\n";
  auto hline = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out += '+';
      out.append(widths[c] + 2, '-');
    }
    out += "+\n";
  };
  hline();
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += ' ';
    append_padded(out, header_[c], widths[c]);
    out += " |";
  }
  out += '\n';
  hline();
  for (const auto& r : rows_) {
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out += ' ';
      append_padded(out, c < r.size() ? r[c] : std::string(), widths[c]);
      out += " |";
    }
    out += '\n';
  }
  hline();
  for (const auto& n : notes_) out += "  " + n + '\n';
  return out;
}

std::string Table::markdown() const {
  std::string out;
  out += "### " + title_ + "\n\n";
  out += "|";
  for (const auto& h : header_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& r : rows_) {
    out += "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out += " " + (c < r.size() ? r[c] : std::string()) + " |";
    }
    out += "\n";
  }
  for (const auto& n : notes_) out += "\n> " + n + "\n";
  return out;
}

std::string Table::csv() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out += '"';
        for (const char ch : cells[c]) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        out += cells[c];
      }
    }
    out += '\n';
  };
  emit_row(header_);
  for (const auto& r : rows_) emit_row(r);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

}  // namespace byz::util
