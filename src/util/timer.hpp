// Wall-clock stopwatch for the performance experiments.
#pragma once

#include <chrono>

namespace byz::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace byz::util
