#include "baselines/birthday.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace byz::base {

BirthdayResult run_birthday(graph::NodeId n, const std::vector<bool>& byz_mask,
                            std::uint32_t samples, std::uint64_t seed) {
  if (byz_mask.size() != n) {
    throw std::invalid_argument("birthday: mask size mismatch");
  }
  util::Xoshiro256 rng(seed);
  BirthdayResult result;
  result.samples = samples;
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  seen.reserve(samples * 2);
  for (std::uint32_t i = 0; i < samples; ++i) {
    const auto node = static_cast<graph::NodeId>(rng.below(n));
    // Honest nodes report a tag unique to their identity; Byzantine nodes
    // all report the same forged tag.
    const std::uint64_t tag =
        byz_mask[node] ? 0xFFFFFFFFFFFFFFFFULL : util::mix_seed(0xB17D, node);
    const auto [it, inserted] = seen.try_emplace(tag, 0u);
    result.collisions += it->second;  // each prior copy makes one new pair
    ++it->second;
  }
  if (result.collisions > 0) {
    const double m = samples;
    result.estimate = m * (m - 1.0) / (2.0 * result.collisions);
  }
  return result;
}

}  // namespace byz::base
