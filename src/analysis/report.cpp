#include "analysis/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace byz::analysis {

namespace {

void capture(const std::string& text) {
  const char* path = std::getenv("BYZCOUNT_CAPTURE");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::app);
  if (out) out << text << '\n';
}

}  // namespace

void emit(const util::Table& table) {
  std::cout << table.str() << std::flush;
  capture(table.markdown());
}

void emit_line(const std::string& line) {
  std::cout << line << '\n' << std::flush;
  capture(line);
}

}  // namespace byz::analysis
