// Byzantine-Resilient Counting (BRC) — the first algorithm of the
// follow-up paper by the same authors, "Byzantine-Resilient Counting in
// Networks" (arXiv 2204.11951; PAPERS.md), adapted to this repo's model as
// the second proto::Estimator backend. Where Algorithm 2 estimates log n
// from the PHASE at which a threshold race stops firing, BRC estimates it
// directly from the MAXIMUM of identity-committed geometric colors,
// aggregated by medians over repeated floods of doubling depth:
//
//   batch m = 1, 2, ...          flood depth T_m = 2^m
//     repetition r = 1..s:       every member v floods its COMMITTED color
//                                C(v, m, r) = color_at(seed', v, idx) for
//                                exactly T_m rounds through the shared
//                                flood kernel; v records the running max
//                                M_{v,r} it accepted.
//     batch median:              med_m(v) = median_r M_{v,r}
//     decide:                    once m >= 2 and |med_m(v) - med_{m-1}(v)|
//                                <= 1, v outputs med_m(v) ≈ log2 n (the
//                                doubling ball stopped growing, so v's max
//                                has saturated at the global maximum).
//
// Byzantine resilience comes from a different mechanism than Algorithm
// 2's witness interrogation: colors are IDENTITY-COMMITTED. The protocol's
// public coin table (proto::color_at — the same full-information-model
// object Algorithm 2 already uses) binds repetition r's color of node v to
// v's certified identity, so every receiver can recompute the commitment
// of any claimed origin locally. A fabricated value matches no member's
// commitment and is dropped at the first honest hop; the paper's model
// gives nodes unique certified ids (no Sybils), so the largest value an
// adversary can put in flight is the true member maximum — INFLATION PAST
// THE TRUTH IS IMPOSSIBLE BY CONSTRUCTION, and a fake-color adversary
// degenerates into an honest participant. What remains is suppression
// (withholding colors, dropping relays), which only shrinks the observed
// maximum by O(|Byz|/n) — the declared bound absorbs it. Consequently BRC
// needs NO adjacency-exchange stage, NO crash rule, and NO verification
// traffic (the Verifier it passes to the kernel has enabled=false; the
// commitment filter runs before injection delivery) — the
// accuracy/rounds/messages frontier E31 measures against Algorithm 2.
//
// Tier support: cold runs and mid-run churn (the kernel's MidRunHooks ride
// unchanged; batches are the backend's "phases", so joiner admission and
// verifier refresh happen at batch boundaries). The warm/ε-warm tiers and
// the message-level engine oracle are Algorithm-2 machinery and are NOT
// supported — Estimator::supports says so, and run_brc_counting throws on
// the corresponding RunControls knobs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimator.hpp"
#include "protocols/run_common.hpp"

namespace byz::proto {

struct BrcConfig {
  /// Flood repetitions per batch (forced odd: per-node batch medians are
  /// exact order statistics, so runs are integer-exact and deterministic).
  std::uint32_t reps_per_batch = 15;
  /// Batch cap (0 = auto: enough doublings to cover the overlay's diameter
  /// estimate plus slack — resolve_brc_max_batches).
  std::uint32_t max_batches = 0;
  /// Earliest batch a node may decide in (needs two batch medians).
  std::uint32_t min_decide_batch = 2;
  /// |med_m - med_{m-1}| <= slack counts as saturated.
  std::uint32_t stability_slack = 1;
};

/// Resolved batch cap for an overlay (cfg.max_batches, or the auto rule).
[[nodiscard]] std::uint32_t resolve_brc_max_batches(
    const graph::Overlay& overlay, const BrcConfig& cfg);

/// One BRC counting run. `controls` supports the flood-kernel knob, the
/// digester, an external (disabled-verification) verifier, and mid-run
/// hooks; throws std::invalid_argument on lazy_subphases or start_phase
/// != 1 (no such tiers — see file comment). RunResult::estimate holds the
/// decided median color ≈ log2 n, directly comparable (as an est/log2 n
/// ratio) with Algorithm 2's decided phase.
[[nodiscard]] RunResult run_brc_counting(const graph::Overlay& overlay,
                                         const std::vector<bool>& byz_mask,
                                         adv::Strategy& strategy,
                                         const BrcConfig& cfg,
                                         std::uint64_t color_seed,
                                         const RunControls& controls);

/// The registry factory ("brc"). ProtocolConfig mapping: max_phase
/// overrides BrcConfig::max_batches; schedule/verification/crash_rule do
/// not apply (BRC has no subphase schedule, no witness verification, and
/// no crash rule).
[[nodiscard]] std::unique_ptr<Estimator> make_brc_estimator(
    const ProtocolConfig& cfg);

}  // namespace byz::proto
