#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace byz::graph {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

SpectralResult second_eigenvalue(const Graph& g, int max_iters,
                                 double tolerance, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("second_eigenvalue: need n >= 2");

  // Top eigenvector of the normalized adjacency is proportional to
  // sqrt(deg); precompute it (unit norm) for deflation.
  std::vector<double> top(n);
  std::vector<double> inv_sqrt_deg(n);
  for (NodeId v = 0; v < n; ++v) {
    const double deg = std::max<std::uint32_t>(g.degree(v), 1);
    top[v] = std::sqrt(deg);
    inv_sqrt_deg[v] = 1.0 / std::sqrt(deg);
  }
  const double top_norm = norm(top);
  for (auto& t : top) t /= top_norm;

  util::Xoshiro256 rng(seed);
  std::vector<double> x(n);
  for (auto& xi : x) xi = rng.uniform() - 0.5;

  auto deflate = [&](std::vector<double>& vec) {
    const double c = dot(vec, top);
    for (std::size_t i = 0; i < vec.size(); ++i) vec[i] -= c * top[i];
  };
  deflate(x);
  {
    const double nx = norm(x);
    if (nx == 0.0) throw std::runtime_error("second_eigenvalue: degenerate start");
    for (auto& xi : x) xi /= nx;
  }

  // Power-iterate M = N + I (eigenvalues 1 + mu_i >= 0); after deflation the
  // dominant eigenvalue is 1 + mu2.
  std::vector<double> y(n);
  double prev = 0.0;
  int it = 0;
  for (; it < max_iters; ++it) {
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0.0;
      for (const NodeId w : g.neighbors(v)) {
        acc += x[w] * inv_sqrt_deg[w];
      }
      y[v] = acc * inv_sqrt_deg[v] + x[v];  // (N + I) x
    }
    deflate(y);
    const double ny = norm(y);
    if (ny == 0.0) break;
    for (NodeId v = 0; v < n; ++v) y[v] /= ny;
    const double est = ny;  // Rayleigh-ish: ||Mx|| for unit x
    x.swap(y);
    if (it > 4 && std::abs(est - prev) < tolerance) {
      prev = est;
      ++it;
      break;
    }
    prev = est;
  }

  SpectralResult result;
  result.mu2 = prev - 1.0;
  double avg_deg = 0.0;
  for (NodeId v = 0; v < n; ++v) avg_deg += g.degree(v);
  avg_deg /= static_cast<double>(n);
  result.lambda2 = result.mu2 * avg_deg;
  result.iterations = it;
  result.vector2 = std::move(x);
  return result;
}

ExpansionBounds cheeger_bounds(double d, double lambda2) {
  const double gap = std::max(0.0, d - lambda2);
  return ExpansionBounds{gap / 2.0, std::sqrt(2.0 * d * gap)};
}

double sweep_cut_expansion(const Graph& g, const std::vector<double>& embedding) {
  const NodeId n = g.num_nodes();
  if (embedding.size() != n || n < 2) {
    throw std::invalid_argument("sweep_cut_expansion: bad embedding size");
  }
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return embedding[a] < embedding[b]; });

  // Incremental boundary maintenance: adding v toggles each incident edge's
  // crossing status.
  std::vector<bool> in_set(n, false);
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t boundary = 0;
  for (NodeId i = 0; i + 1 < n; ++i) {  // prefix sizes 1..n-1
    const NodeId v = order[i];
    in_set[v] = true;
    for (const NodeId w : g.neighbors(v)) {
      if (w == v) continue;
      if (in_set[w]) {
        --boundary;
      } else {
        ++boundary;
      }
    }
    const std::uint64_t size = i + 1;
    const std::uint64_t smaller = std::min<std::uint64_t>(size, n - size);
    if (smaller == 0) continue;
    best = std::min(best, static_cast<double>(boundary) /
                              static_cast<double>(smaller));
  }
  return best;
}

double cut_expansion(const Graph& g, const std::vector<bool>& in_set) {
  const NodeId n = g.num_nodes();
  if (in_set.size() != n) {
    throw std::invalid_argument("cut_expansion: mask size mismatch");
  }
  std::uint64_t size = 0;
  std::uint64_t boundary = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!in_set[v]) continue;
    ++size;
    for (const NodeId w : g.neighbors(v)) {
      if (!in_set[w]) ++boundary;
    }
  }
  const std::uint64_t smaller = std::min<std::uint64_t>(size, n - size);
  if (smaller == 0) return 0.0;
  return static_cast<double>(boundary) / static_cast<double>(smaller);
}

}  // namespace byz::graph
