// byzbench — unified experiment orchestrator. Replaces the 16 standalone
// bench_eXX binaries: every experiment registers a ScenarioSpec (grid,
// trials, metrics, run function) and this driver resolves --filter
// against the registry, runs the selection on a shared scheduler +
// overlay cache, and emits both the human tables and BENCH_<exp>.json.
//
//   $ byzbench --list
//   $ byzbench --filter e07 --scale 0.1 --json-out .
//   $ byzbench --jobs 8
#include <iostream>

#include "byzcount.hpp"

int main(int argc, char** argv) {
  using namespace byz;

  util::ArgParser args("byzbench",
                       "unified byzcount experiment orchestrator (E01-E16)");
  args.add_flag("list", "enumerate registered scenarios and exit");
  args.add_option("filter", "comma-separated id/title substrings (empty = all)",
                  "");
  args.add_option("scale", "trial multiplier; < 1 also shrinks size sweeps",
                  "1.0");
  args.add_option("jobs", "scheduler worker threads (0 = hardware)", "0");
  args.add_option("json-out", "directory for BENCH_<exp>.json (empty = off)",
                  "");
  args.add_option("trace-out",
                  "Chrome trace-event JSON file (Perfetto/chrome://tracing; "
                  "empty = tracing off)",
                  "");
  args.add_option("metrics-out",
                  "metrics registry dump, byzobs/metrics/v1 JSON (empty = off)",
                  "");
  args.add_flag("audit",
                "divergence audit: digest both tiers at every oracle seam "
                "and emit byzobs/forensics/v1 reports on divergence "
                "(BENCH manifests stay bitwise identical)");
  args.add_option("digest-out",
                  "directory for DIGEST_<exp>.json run-digest sidecars and "
                  "forensics reports (empty = off; implies --audit)",
                  "");
  args.add_option("flood-threads",
                  "flood-kernel default for every scenario run: 0 = serial "
                  "reference kernel, N > 0 = word-packed parallel kernel "
                  "with N threads (bitwise-identical results either way)",
                  "0");
  args.add_option("backend",
                  "protocol backend for backend-aware scenarios (registered "
                  "proto::Estimator name, e.g. algo2, algo1, brc; empty = "
                  "each scenario's default stack)",
                  "");
  auto& registry = bench_core::Registry::instance();
  bench_core::RunOptions opts;
  try {
    if (!args.parse(argc, argv)) return 0;
    if (args.flag("list")) {
      std::cout << bench_core::list_scenarios(registry);
      return 0;
    }
    opts.filter = args.str("filter");
    opts.scale = args.real("scale");
    opts.jobs = static_cast<unsigned>(args.integer("jobs"));
    opts.json_out = args.str("json-out");
    opts.trace_out = args.str("trace-out");
    opts.metrics_out = args.str("metrics-out");
    opts.digest_out = args.str("digest-out");
    opts.audit = args.flag("audit") || !opts.digest_out.empty();
    const auto flood_threads =
        static_cast<std::uint32_t>(args.integer("flood-threads"));
    if (flood_threads > 0) {
      proto::set_default_flood_exec(
          {proto::FloodMode::kParallel, flood_threads});
    }
    opts.backend = args.str("backend");
  } catch (const std::exception& e) {
    std::cerr << "byzbench: " << e.what() << "\n\n" << args.help();
    return 2;
  }
  if (!opts.backend.empty() && !proto::estimator_registered(opts.backend)) {
    std::cerr << "byzbench: unknown --backend '" << opts.backend << "'; known:";
    for (const auto& name : proto::estimator_names()) {
      std::cerr << " " << name;
    }
    std::cerr << "\n";
    return 2;
  }
  if (opts.scale <= 0.0) {
    std::cerr << "byzbench: --scale must be > 0\n";
    return 2;
  }

  const auto selected = registry.match(opts.filter);
  if (selected.empty()) {
    std::cerr << "byzbench: no scenario matches filter '" << opts.filter
              << "' (try --list)\n";
    return 2;
  }

  const auto outcomes = bench_core::run_scenarios(registry, opts);
  std::cout << bench_core::summarize_outcomes(outcomes);
  for (const auto& o : outcomes) {
    if (!o.ok) return 1;
  }
  return 0;
}
