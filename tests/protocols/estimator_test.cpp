#include "protocols/estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "adversary/strategies.hpp"
#include "graph/categories.hpp"
#include "graph/small_world.hpp"
#include "protocols/brc/brc.hpp"
#include "protocols/estimate.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

std::shared_ptr<const graph::Overlay> make_overlay(graph::NodeId n,
                                                   std::uint32_t d,
                                                   std::uint64_t seed) {
  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  return std::make_shared<graph::Overlay>(graph::Overlay::build(params));
}

std::vector<bool> make_byz(graph::NodeId n, double delta, std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix_seed(seed, 0x0B12));
  return graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);
}

TEST(EstimatorRegistry, BuiltinsRegistered) {
  EXPECT_TRUE(estimator_registered("algo1"));
  EXPECT_TRUE(estimator_registered("algo2"));
  EXPECT_TRUE(estimator_registered("brc"));
  EXPECT_FALSE(estimator_registered("no-such-backend"));

  const auto names = estimator_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "algo2"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "brc"), names.end());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(EstimatorRegistry, UnknownNameThrowsWithKnownList) {
  try {
    (void)make_estimator("no-such-backend");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    // The CLI layers surface this verbatim, so the message must name the
    // registered backends.
    EXPECT_NE(what.find("algo2"), std::string::npos);
    EXPECT_NE(what.find("brc"), std::string::npos);
  }
}

TEST(EstimatorRegistry, RegisterAddsAndReplaces) {
  register_estimator("test-backend", [](const ProtocolConfig& cfg) {
    return make_estimator("algo2", cfg);
  });
  EXPECT_TRUE(estimator_registered("test-backend"));
  EXPECT_EQ(make_estimator("test-backend")->name(), "algo2");

  register_estimator("test-backend", [](const ProtocolConfig& cfg) {
    return make_estimator("brc", cfg);
  });
  EXPECT_EQ(make_estimator("test-backend")->name(), "brc");
}

TEST(EstimatorRegistry, NamesMatchInstances) {
  EXPECT_EQ(make_estimator("algo1")->name(), "algo1");
  EXPECT_EQ(make_estimator("algo2")->name(), "algo2");
  EXPECT_EQ(make_estimator("brc")->name(), "brc");
}

TEST(CombinedAgreementBound, RatioBandFromOwnBounds) {
  const EstimatorBound a{0.5, 2.0, 0.1};
  const EstimatorBound b{0.8, 1.6, 0.05};
  const auto band = combined_agreement_bound(a, b);
  EXPECT_DOUBLE_EQ(band.lo, 0.5 / 1.6);
  EXPECT_DOUBLE_EQ(band.hi, 2.0 / 0.8);
}

TEST(CombinedAgreementBound, DegenerateBoundYieldsZero) {
  const auto band = combined_agreement_bound({0.5, 2.0, 0.1}, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(band.lo, 0.0);
  EXPECT_DOUBLE_EQ(band.hi, 0.0);
}

TEST(EstimatorTiers, SupportMatrix) {
  const auto algo2 = make_estimator("algo2");
  const auto algo1 = make_estimator("algo1");
  const auto brc = make_estimator("brc");
  const EstimatorTier tiers[] = {
      EstimatorTier::kColdRun,     EstimatorTier::kLazySubphases,
      EstimatorTier::kWarmStart,   EstimatorTier::kEpsWarm,
      EstimatorTier::kMidRunChurn, EstimatorTier::kEngineOracle};
  for (const auto tier : tiers) {
    EXPECT_TRUE(algo2->supports(tier));
    EXPECT_TRUE(algo1->supports(tier));
  }
  EXPECT_TRUE(brc->supports(EstimatorTier::kColdRun));
  EXPECT_TRUE(brc->supports(EstimatorTier::kMidRunChurn));
  EXPECT_FALSE(brc->supports(EstimatorTier::kLazySubphases));
  EXPECT_FALSE(brc->supports(EstimatorTier::kWarmStart));
  EXPECT_FALSE(brc->supports(EstimatorTier::kEpsWarm));
  EXPECT_FALSE(brc->supports(EstimatorTier::kEngineOracle));
}

TEST(EstimatorInterface, Algo2MatchesDirectCall) {
  const auto overlay = make_overlay(512, 6, 0xE5701);
  const auto byz = make_byz(512, 0.7, 0xE5701);
  const auto est = make_estimator("algo2");

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto via_interface = est->run(*overlay, byz, *s1, 0xC0105EED);

  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto direct = run_counting_with(*overlay, byz, *s2, ProtocolConfig{},
                                        0xC0105EED, RunControls{});
  EXPECT_EQ(via_interface, direct);
}

TEST(EstimatorInterface, Algo1ForcesAblationConfig) {
  const auto overlay = make_overlay(512, 6, 0xE5702);
  const auto byz = make_byz(512, 0.7, 0xE5702);
  const auto est = make_estimator("algo1");

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto via_interface = est->run(*overlay, byz, *s1, 0xC0105EED);
  EXPECT_EQ(via_interface.instr.verify_messages, 0u);
  EXPECT_EQ(via_interface.instr.crashes, 0u);

  ProtocolConfig basic;
  basic.verification.enabled = false;
  basic.crash_rule = false;
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto direct = run_counting_with(*overlay, byz, *s2, basic, 0xC0105EED,
                                        RunControls{});
  EXPECT_EQ(via_interface, direct);
}

TEST(BrcEstimator, HonestRunHonorsDeclaredBound) {
  const auto overlay = make_overlay(1024, 6, 0xB4C1);
  const auto byz = make_byz(1024, 0.7, 0xB4C1);
  const auto est = make_estimator("brc");
  const auto bound = est->bound(*overlay);
  ASSERT_GT(bound.lo, 0.0);
  ASSERT_GT(bound.hi, bound.lo);

  auto strategy = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto run = est->run(*overlay, byz, *strategy, 0xB4C1);
  const auto acc = summarize_accuracy(run, 1024, bound.lo, bound.hi);
  EXPECT_GT(acc.decided, 0u);
  EXPECT_GE(acc.frac_in_band, 1.0 - bound.eps);
  const double med = median_decided_estimate(run) / std::log2(1024.0);
  EXPECT_GE(med, bound.lo);
  EXPECT_LE(med, bound.hi);
  // BRC runs no witness interrogation by construction.
  EXPECT_EQ(run.instr.verify_messages, 0u);
  EXPECT_EQ(run.instr.crashes, 0u);
}

TEST(BrcEstimator, CommitmentFilterNeutralizesFakeColors) {
  // Every forged color exceeds the committed member maximum and is dropped
  // before delivery, so a fake-color adversary degenerates into an honest
  // relay: decisions and estimates are IDENTICAL to the honest run, and
  // the filter accounts for every attempted injection.
  const auto overlay = make_overlay(1024, 6, 0xB4C2);
  const auto byz = make_byz(1024, 0.7, 0xB4C2);
  const auto est = make_estimator("brc");

  auto honest = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto clean = est->run(*overlay, byz, *honest, 0xB4C2);
  auto fake = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto attacked = est->run(*overlay, byz, *fake, 0xB4C2);

  EXPECT_EQ(attacked.status, clean.status);
  EXPECT_EQ(attacked.estimate, clean.estimate);
  EXPECT_GT(attacked.instr.injections_attempted, 0u);
  EXPECT_EQ(attacked.instr.injections_accepted, 0u);
  EXPECT_EQ(attacked.instr.injections_caught,
            attacked.instr.injections_attempted);
}

TEST(BrcEstimator, ParallelFloodBitwiseEqualsSerial) {
  const auto overlay = make_overlay(768, 6, 0xB4C3);
  const auto byz = make_byz(768, 0.7, 0xB4C3);
  const auto est = make_estimator("brc");

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto serial = est->run(*overlay, byz, *s1, 0xB4C3);

  RunControls parallel_controls;
  parallel_controls.flood = {FloodMode::kParallel, 4};
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto parallel =
      est->run(*overlay, byz, *s2, 0xB4C3, parallel_controls);
  EXPECT_EQ(serial, parallel);
}

TEST(BrcEstimator, ThrowsOnUnsupportedControls) {
  const auto overlay = make_overlay(128, 6, 0xB4C4);
  const std::vector<bool> byz(128, false);
  const auto est = make_estimator("brc");
  auto strategy = adv::make_strategy(adv::StrategyKind::kHonest);

  RunControls lazy;
  lazy.lazy_subphases = true;
  EXPECT_THROW((void)est->run(*overlay, byz, *strategy, 1, lazy),
               std::invalid_argument);

  RunControls warm;
  warm.start_phase = 2;
  EXPECT_THROW((void)est->run(*overlay, byz, *strategy, 1, warm),
               std::invalid_argument);
}

TEST(BrcEstimator, MaxBatchesCapReportsUndecided) {
  // A one-batch cap cannot reach the stability rule (it needs two batch
  // medians), so every honest node stays undecided — the cap maps through
  // ProtocolConfig::max_phase like Algorithm 2's phase cap.
  const auto overlay = make_overlay(256, 6, 0xB4C5);
  const std::vector<bool> byz(256, false);
  ProtocolConfig cfg;
  cfg.max_phase = 1;
  const auto est = make_estimator("brc", cfg);
  auto strategy = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto run = est->run(*overlay, byz, *strategy, 0xB4C5);
  EXPECT_EQ(run.phases_executed, 1u);
  const auto acc = summarize_accuracy(run, 256);
  EXPECT_EQ(acc.decided, 0u);
  EXPECT_EQ(acc.undecided, acc.honest);
}

}  // namespace
}  // namespace byz::proto
