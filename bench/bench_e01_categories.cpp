// E1 — Definition-9 node-category sizes vs the Lemma-2 bounds.
//
// Validates: Lemma 1/21 (|LTL| >= n - O(n^0.8)), Lemma 2 (|Safe|,
// |Byz-safe| = n - o(n)), and the radius parameterization discussion of
// DESIGN.md §3.4 (the paper's a·log n radius is < 1 at these sizes, so we
// report radii 1 and 2 explicitly).
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct Row {
  graph::NodeId n = 0;
  graph::NodeCategories cat1;
  graph::NodeCategories cat2;
  std::uint32_t chain = 0;
  double paper_radius = 0.0;
};

void run_e01(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));
  const std::uint32_t d = 8;

  for (const double delta : {0.5, 0.7}) {
    // Grid cells are independent: classify every size on the scheduler.
    const auto rows = ctx.scheduler().map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      const auto overlay = ctx.overlay(n, d, 0xE1 + n);
      const auto byz = place_byz(n, delta, 0xE1 + n);
      Row row;
      row.n = n;
      row.cat1 = graph::classify_categories(*overlay, byz, 1, 1);
      row.cat2 = graph::classify_categories(*overlay, byz, 1, 2);
      row.chain = graph::longest_byzantine_chain(overlay->h_simple(), byz, 16);
      row.paper_radius = graph::paper_radius_a(n, d, overlay->k(), delta);
      return row;
    });

    util::Table table(
        "E1: node categories, d=8, B=n^(1-" + util::format_double(delta, 1) +
        "), LTL radius 1");
    table.columns({"n", "B", "n^0.8", "NLT(r1)", "Safe(rho1)", "Unsafe(rho1)",
                   "BUS(rho1)", "Byz-safe(rho1)", "BUS(rho2)", "max byz chain",
                   "a*log2n (paper)"});
    std::vector<double> safe_frac;
    for (const auto& row : rows) {
      table.row()
          .cell(std::uint64_t{row.n})
          .cell(row.cat1.byz)
          .cell(std::pow(static_cast<double>(row.n), 0.8), 0)
          .cell(row.cat1.nlt)
          .cell(row.cat1.safe)
          .cell(row.cat1.unsafe_)
          .cell(row.cat1.bus)
          .cell(row.cat1.byz_safe)
          .cell(row.cat2.bus)
          .cell(std::uint64_t{row.chain})
          .cell(row.paper_radius, 3);
      safe_frac.push_back(static_cast<double>(row.cat1.safe) /
                          static_cast<double>(row.n));
    }
    table.note("Lemma 2 predicts: NLT = O(n^0.8); Safe, Byz-safe = n - o(n); "
               "BUS = o(n). Observation 6 predicts max chain < k = 3 w.h.p. "
               "for delta > 3/d.");
    ctx.emit(table);
    ctx.metric("safe_frac_delta" + util::format_double(delta, 1),
               bench_core::quantiles_json(safe_frac));
  }
}

}  // namespace

BYZBENCH_REGISTER(e01) {
  ScenarioSpec spec;
  spec.id = "e01";
  spec.title = "node categories vs Lemma-2 bounds";
  spec.claim = "Lemmas 1/2/21: NLT = O(n^0.8); Safe, Byz-safe = n - o(n)";
  spec.grid = {{"delta", {"0.5", "0.7"}}, pow2_axis(10, 14)};
  spec.base_trials = 1;
  spec.metrics = {"safe_frac_delta0.5", "safe_frac_delta0.7"};
  spec.run = run_e01;
  return spec;
}
