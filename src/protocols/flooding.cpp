#include "protocols/flooding.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace byz::proto {

using graph::NodeId;

// ---------------------------------------------------------------------------
// Process-wide kernel default
// ---------------------------------------------------------------------------

namespace {

// The override is packed into one atomic word: bit 63 marks "set", byte 4
// holds the mode, the low 32 bits the thread count. 0 means "no override":
// fall back to the environment-derived default.
constexpr std::uint64_t kExecSetBit = std::uint64_t{1} << 63;

std::uint64_t pack_exec(FloodExec exec) {
  return kExecSetBit |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(exec.mode))
          << 32) |
         exec.threads;
}

FloodExec unpack_exec(std::uint64_t packed) {
  FloodExec exec;
  exec.mode = static_cast<FloodMode>((packed >> 32) & 0xff);
  exec.threads = static_cast<std::uint32_t>(packed & 0xffffffffu);
  return exec;
}

std::atomic<std::uint64_t>& exec_override() {
  static std::atomic<std::uint64_t> value{0};
  return value;
}

FloodExec env_default_exec() {
  // BYZ_FLOOD_THREADS=N (N > 0) forces the parallel kernel process-wide —
  // the handle the TSan CI job uses to drive unmodified test binaries
  // through the parallel path.
  static const FloodExec exec = [] {
    FloodExec e;
    e.mode = FloodMode::kSerial;
    if (const char* s = std::getenv("BYZ_FLOOD_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(s, &end, 10);
      if (end != s && v > 0) {
        e.mode = FloodMode::kParallel;
        e.threads = static_cast<std::uint32_t>(v);
      }
    }
    return e;
  }();
  return exec;
}

}  // namespace

void set_default_flood_exec(FloodExec exec) {
  if (exec.mode == FloodMode::kDefault) {
    exec_override().store(0, std::memory_order_relaxed);
    return;
  }
  exec_override().store(pack_exec(exec), std::memory_order_relaxed);
}

FloodExec default_flood_exec() {
  const std::uint64_t packed = exec_override().load(std::memory_order_relaxed);
  if (packed != 0) return unpack_exec(packed);
  return env_default_exec();
}

FloodExec resolve_flood_exec(FloodExec exec) {
  if (exec.mode == FloodMode::kDefault) return default_flood_exec();
  return exec;
}

void FloodWorkspace::ensure(NodeId n) {
  known.assign(n, 0);
  fresh.assign(n, 0);
  best_before.assign(n, 0);
  last_step.assign(n, 0);
  recv.assign(n, 0);
  frontier.clear();
  next_frontier.clear();
  touched.clear();
  live_frontier.clear();
}

namespace {

/// Per-round frontier-size histogram shared by both kernels.
const obs::Histogram& frontier_histogram() {
  static const obs::Histogram hist("flood.frontier");
  return hist;
}

/// Fork/join over `num_words` bitset words in `nt` contiguous chunks; each
/// worker runs body(first_word, last_word) exactly once, so per-worker
/// accumulators live inside the body and merge at its end. The OpenMP form
/// (one static chunk per thread) composes with the surrounding code's omp
/// usage; under TSan the tool cannot see libgomp's futex barriers, so that
/// build — and the no-OpenMP fallback — uses std::thread, whose join gives
/// the identical fork/join happens-before in a form TSan understands.
template <typename Body>
void parallel_word_chunks(int nt, std::int64_t num_words, const Body& body) {
  if (nt <= 1 || num_words <= 1) {
    body(std::int64_t{0}, num_words);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(nt, num_words);
  const std::int64_t chunk = (num_words + chunks - 1) / chunks;
#if defined(_OPENMP) && !defined(__SANITIZE_THREAD__)
#pragma omp parallel for schedule(static, 1) num_threads(static_cast<int>(chunks))
  for (std::int64_t c = 0; c < chunks; ++c) {
    body(c * chunk, std::min<std::int64_t>(num_words, (c + 1) * chunk));
  }
#else
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(chunks - 1));
  for (std::int64_t c = 1; c < chunks; ++c) {
    const std::int64_t first = c * chunk;
    const std::int64_t last =
        std::min<std::int64_t>(num_words, (c + 1) * chunk);
    workers.emplace_back([&body, first, last] { body(first, last); });
  }
  body(std::int64_t{0}, std::min<std::int64_t>(num_words, chunk));
  for (auto& th : workers) th.join();
#endif
}

// ---------------------------------------------------------------------------
// Serial reference kernel — the oracle. This body is the original scalar
// implementation, kept verbatim; the parallel kernel below must stay
// bitwise-equivalent to it (tests/protocols/flood_parallel_test.cpp, E30).
// ---------------------------------------------------------------------------

void run_subphase_serial(const graph::Overlay& overlay,
                         const std::vector<bool>& byz_mask,
                         const std::vector<bool>& crashed,
                         const Verifier& verifier, const FloodParams& params,
                         std::span<const Color> gen_color,
                         std::span<const Injection> injections,
                         FloodWorkspace& ws, sim::Instrumentation& instr) {
  const MidRunHooks* live = params.live;
  const NodeId n = live ? live->node_bound() : overlay.num_nodes();
  const auto& h = overlay.h_simple();
  const auto in_region = [&](NodeId v) {
    return params.region.empty() || params.region[v] != 0;
  };
  const auto present = [&](NodeId v) {
    return live == nullptr || live->alive(v);
  };

  // Step 1 senders: every generating node broadcasts its own color.
  // (Mid-run joiners have gen_color 0 until a phase boundary admits them,
  // so they can never enter the frontier before being alive.)
  for (NodeId v = 0; v < n; ++v) {
    if (!in_region(v)) continue;
    ws.known[v] = gen_color[v];
    if (gen_color[v] > 0 && !crashed[v]) ws.frontier.push_back(v);
  }

  // Injections grouped by step (inputs are few; linear scan per step).
  for (std::uint32_t t = 1; t <= params.steps; ++t) {
    obs::Span round_span("flood.round");
    round_span.arg("step", t).arg("frontier", ws.frontier.size());
    frontier_histogram().observe(ws.frontier.size());
    const std::uint64_t round_tokens_before = instr.token_messages;
    // Mid-run churn: apply the events scheduled for this round BEFORE its
    // sends, so a node departing at round r never sends at r and a joiner
    // entering at r can receive at r. The hooks also get the canonical
    // wavefront — the sorted set of protocol-conformant senders as of the
    // previous round's membership — so an adaptive churn adversary can
    // target the flood frontier; the message-level engine derives the
    // identical set, keeping the two tiers bitwise equivalent.
    if (live != nullptr) {
      ws.live_frontier.clear();
      if (live->wants_frontier()) {
        for (const NodeId u : ws.frontier) {
          if (crashed[u]) continue;
          if (byz_mask[u] && !params.byz_forward) continue;
          if (!live->alive(u)) continue;
          ws.live_frontier.push_back(u);
        }
        std::sort(ws.live_frontier.begin(), ws.live_frontier.end());
      }
      RoundClock clock = params.clock;
      clock.step = t;
      clock.round = params.clock.round + (t - 1);
      params.live->begin_round(clock, ws.live_frontier);
    }
    ws.touched.clear();
    auto deliver = [&](NodeId receiver, NodeId sender, Color c, bool verify) {
      if (!in_region(receiver)) return;
      if (crashed[receiver] || !present(receiver)) return;
      if (byz_mask[receiver]) {
        // Byzantine receivers absorb knowledge without verification; their
        // counterfactual-honest state is tracked for legit-fresh checks.
        if (ws.recv[receiver] < c) {
          if (ws.recv[receiver] == 0) ws.touched.push_back(receiver);
          ws.recv[receiver] = c;
        }
        return;
      }
      if (verify) {
        // legit_fresh for the sender: the value an honest node in its
        // position would forward this step.
        const Color legit =
            (t == 1) ? gen_color[sender]
                     : ((ws.fresh[sender] == t - 1) ? ws.known[sender] : 0);
        if (!verifier.accept(sender, c, t, legit, byz_mask[sender], instr)) {
          return;
        }
      }
      if (ws.recv[receiver] < c) {
        if (ws.recv[receiver] == 0) ws.touched.push_back(receiver);
        ws.recv[receiver] = c;
      } else if (ws.recv[receiver] == 0) {
        // c could be 0 only from a degenerate injection; ignore.
      }
    };

    // Protocol-conformant sends from the frontier. A frontier member that
    // departed since it was enqueued is silently dropped — its messages
    // die with it.
    for (const NodeId u : ws.frontier) {
      if (byz_mask[u] && !params.byz_forward) continue;
      if (!present(u)) continue;
      const auto nbrs = live ? live->neighbors(u) : h.neighbors(u);
      instr.count_token(nbrs.size());
      instr.max_node_round_sends =
          std::max<std::uint64_t>(instr.max_node_round_sends, nbrs.size());
      const Color c = ws.known[u];
      if (params.digest != nullptr) {
        params.digest->fold_round(obs::digest_sender_term(u, c));
      }
      for (const NodeId v : nbrs) deliver(v, u, c, /*verify=*/true);
    }
    // Byzantine injections scheduled for this step.
    for (const auto& inj : injections) {
      if (inj.step != t || crashed[inj.from]) continue;
      if (!in_region(inj.from) || !present(inj.from)) continue;
      const auto nbrs =
          live ? live->neighbors(inj.from) : h.neighbors(inj.from);
      instr.count_token(nbrs.size());
      instr.max_node_round_sends =
          std::max<std::uint64_t>(instr.max_node_round_sends, nbrs.size());
      for (const NodeId v : nbrs) deliver(v, inj.from, inj.value, /*verify=*/true);
    }

    // Close the step: fold receive maxima into k_t bookkeeping and build
    // the next frontier from improvements.
    ws.next_frontier.clear();
    for (const NodeId v : ws.touched) {
      const Color r = ws.recv[v];
      ws.recv[v] = 0;
      // The commutative XOR fold makes the digest independent of touched-
      // list order; the engine folds the same (receiver, max) set walking
      // node ids ascending.
      if (params.digest != nullptr) {
        params.digest->fold_round(obs::digest_receiver_term(v, r));
      }
      if (t < params.steps) {
        ws.best_before[v] = std::max(ws.best_before[v], r);
      } else {
        ws.last_step[v] = r;
      }
      if (r > ws.known[v]) {
        ws.known[v] = r;
        ws.fresh[v] = t;
        if (!crashed[v]) ws.next_frontier.push_back(v);
      }
    }
    ws.frontier.swap(ws.next_frontier);
    if (params.digest != nullptr) {
      params.digest->close_round(instr.token_messages - round_tokens_before);
    }
    round_span.arg("tokens", instr.token_messages - round_tokens_before);
  }
}

// ---------------------------------------------------------------------------
// Word-packed parallel kernel. Bitwise-equivalent to the serial oracle by
// construction:
//   * receive folding is a commutative max — relaxed CAS loops commute, so
//     the per-step receive maxima are interleaving-independent;
//   * touched membership is "recv went 0 -> c", marked exactly once by the
//     thread whose CAS succeeds from 0 (values only grow, so per node and
//     step only one CAS with expected value 0 can ever succeed);
//   * the round digest is a commutative XOR fold, accumulated per worker
//     and folded once on the main thread;
//   * Instrumentation is sums plus one max, merged per worker under a
//     mutex via Instrumentation::merge. Conformant frontier sends always
//     satisfy c == legit_fresh (step 1: c = known = gen_color; later
//     steps: frontier membership implies fresh == t-1, so legit = known =
//     c), hence Verifier::accept only touches the commutative
//     verification-traffic sums on this path. The few Byzantine
//     injections — whose accept() outcome feeds the injection counters —
//     are delivered serially between the sweeps;
//   * the close sweep owns all state it writes (best_before/last_step/
//     known/fresh and the next-frontier word) word-by-word, and every
//     observable downstream of frontier ITERATION ORDER is
//     order-insensitive (the live wavefront is explicitly canonical, and
//     counters/digests commute), so ascending-bitset order matches the
//     serial vectors bit for bit.
// ---------------------------------------------------------------------------

void run_subphase_parallel(const graph::Overlay& overlay,
                           const std::vector<bool>& byz_mask,
                           const std::vector<bool>& crashed,
                           const Verifier& verifier, const FloodParams& params,
                           std::span<const Color> gen_color,
                           std::span<const Injection> injections,
                           FloodWorkspace& ws, sim::Instrumentation& instr,
                           std::uint32_t threads) {
  const MidRunHooks* live = params.live;
  const NodeId n = live ? live->node_bound() : overlay.num_nodes();
  const auto& h = overlay.h_simple();
  const auto in_region = [&](NodeId v) {
    return params.region.empty() || params.region[v] != 0;
  };
  const auto present = [&](NodeId v) {
    return live == nullptr || live->alive(v);
  };
  const int nt = static_cast<int>(
      threads > 0 ? threads : std::max(1u, std::thread::hardware_concurrency()));

  using Word = util::Bitset::Word;
  constexpr std::size_t kWordBits = util::Bitset::kWordBits;
  ws.frontier_bits.assign(n);
  ws.next_frontier_bits.assign(n);
  ws.touched_bits.assign(n);
  const std::int64_t num_words =
      static_cast<std::int64_t>(ws.frontier_bits.num_words());
  std::mutex merge_mu;

  // Atomic running max over recv[v]; the value it replaces decides the
  // 0 -> c transition (touched membership) exactly once.
  auto deliver_max = [&](NodeId v, Color c) {
    std::atomic_ref<Color> slot(ws.recv[v]);
    Color cur = slot.load(std::memory_order_relaxed);
    while (cur < c) {
      if (slot.compare_exchange_weak(cur, c, std::memory_order_relaxed)) {
        if (cur == 0) ws.touched_bits.set_atomic(v);
        break;
      }
    }
  };

  // Step 1 senders, word-parallel: each frontier word is built locally and
  // stored exactly once.
  {
    Word* fw = ws.frontier_bits.words();
    parallel_word_chunks(nt, num_words, [&](std::int64_t first,
                                            std::int64_t last) {
      for (std::int64_t wi = first; wi < last; ++wi) {
        Word w = 0;
        const NodeId base = static_cast<NodeId>(
            static_cast<std::size_t>(wi) * kWordBits);
        const NodeId end =
            std::min<NodeId>(n, base + static_cast<NodeId>(kWordBits));
        for (NodeId v = base; v < end; ++v) {
          if (!in_region(v)) continue;
          ws.known[v] = gen_color[v];
          if (gen_color[v] > 0 && !crashed[v]) w |= Word{1} << (v - base);
        }
        fw[wi] = w;
      }
    });
  }

  for (std::uint32_t t = 1; t <= params.steps; ++t) {
    const std::size_t frontier_count = ws.frontier_bits.count();
    obs::Span round_span("flood.round");
    round_span.arg("step", t).arg("frontier", frontier_count);
    frontier_histogram().observe(frontier_count);
    const std::uint64_t round_tokens_before = instr.token_messages;
    if (live != nullptr) {
      ws.live_frontier.clear();
      if (live->wants_frontier()) {
        // Ascending bitset order IS the canonical sorted wavefront.
        ws.frontier_bits.for_each_set([&](std::size_t u) {
          if (crashed[u]) return;
          if (byz_mask[u] && !params.byz_forward) return;
          if (!live->alive(static_cast<NodeId>(u))) return;
          ws.live_frontier.push_back(static_cast<NodeId>(u));
        });
      }
      RoundClock clock = params.clock;
      clock.step = t;
      clock.round = params.clock.round + (t - 1);
      params.live->begin_round(clock, ws.live_frontier);
    }

    std::uint64_t round_digest_acc = 0;

    // Sender sweep over frontier words.
    {
      const Word* fw = ws.frontier_bits.words();
      parallel_word_chunks(nt, num_words, [&](std::int64_t first,
                                              std::int64_t last) {
        sim::Instrumentation local;
        std::uint64_t dig = 0;
        for (std::int64_t wi = first; wi < last; ++wi) {
          Word w = fw[wi];
          while (w) {
            const NodeId u = static_cast<NodeId>(
                static_cast<std::size_t>(wi) * kWordBits +
                static_cast<std::size_t>(std::countr_zero(w)));
            w &= w - 1;
            if (byz_mask[u] && !params.byz_forward) continue;
            if (!present(u)) continue;
            const auto nbrs = live ? live->neighbors(u) : h.neighbors(u);
            local.count_token(nbrs.size());
            local.max_node_round_sends = std::max<std::uint64_t>(
                local.max_node_round_sends, nbrs.size());
            const Color c = ws.known[u];
            if (params.digest != nullptr) {
              dig ^= obs::digest_sender_term(u, c);
            }
            const Color legit =
                (t == 1) ? gen_color[u]
                         : ((ws.fresh[u] == t - 1) ? ws.known[u] : 0);
            for (const NodeId v : nbrs) {
              if (!in_region(v)) continue;
              if (crashed[v] || !present(v)) continue;
              if (byz_mask[v]) {
                deliver_max(v, c);
                continue;
              }
              if (!verifier.accept(u, c, t, legit, byz_mask[u], local)) {
                continue;
              }
              deliver_max(v, c);
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        instr.merge(local);
        round_digest_acc ^= dig;
      });
    }

    // Byzantine injections: few, and their accept() outcome feeds the
    // injection counters, so they run serially on the real instrumentation
    // (recv folding still commutes with the sweep above — it already
    // finished — and with other injections via the same max fold).
    for (const auto& inj : injections) {
      if (inj.step != t || crashed[inj.from]) continue;
      if (!in_region(inj.from) || !present(inj.from)) continue;
      const auto nbrs =
          live ? live->neighbors(inj.from) : h.neighbors(inj.from);
      instr.count_token(nbrs.size());
      instr.max_node_round_sends =
          std::max<std::uint64_t>(instr.max_node_round_sends, nbrs.size());
      for (const NodeId v : nbrs) {
        if (!in_region(v)) continue;
        if (crashed[v] || !present(v)) continue;
        if (byz_mask[v]) {
          deliver_max(v, inj.value);
          continue;
        }
        const Color legit =
            (t == 1)
                ? gen_color[inj.from]
                : ((ws.fresh[inj.from] == t - 1) ? ws.known[inj.from] : 0);
        if (!verifier.accept(inj.from, inj.value, t, legit,
                             byz_mask[inj.from], instr)) {
          continue;
        }
        deliver_max(v, inj.value);
      }
    }

    // Close sweep: every word of the touched set is owned by exactly one
    // iteration, which also writes that word of the next frontier (0 when
    // nothing was touched) and re-zeroes the touched word for the next
    // step.
    {
      Word* tw_words = ws.touched_bits.words();
      Word* nf_words = ws.next_frontier_bits.words();
      parallel_word_chunks(nt, num_words, [&](std::int64_t first,
                                              std::int64_t last) {
        std::uint64_t dig = 0;
        for (std::int64_t wi = first; wi < last; ++wi) {
          Word tw = tw_words[wi];
          Word next_w = 0;
          while (tw) {
            const std::size_t bit =
                static_cast<std::size_t>(std::countr_zero(tw));
            tw &= tw - 1;
            const NodeId v = static_cast<NodeId>(
                static_cast<std::size_t>(wi) * kWordBits + bit);
            const Color r = ws.recv[v];
            ws.recv[v] = 0;
            if (params.digest != nullptr) {
              dig ^= obs::digest_receiver_term(v, r);
            }
            if (t < params.steps) {
              ws.best_before[v] = std::max(ws.best_before[v], r);
            } else {
              ws.last_step[v] = r;
            }
            if (r > ws.known[v]) {
              ws.known[v] = r;
              ws.fresh[v] = t;
              if (!crashed[v]) next_w |= Word{1} << bit;
            }
          }
          nf_words[wi] = next_w;
          tw_words[wi] = 0;
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        round_digest_acc ^= dig;
      });
    }

    std::swap(ws.frontier_bits, ws.next_frontier_bits);
    if (params.digest != nullptr) {
      params.digest->fold_round(round_digest_acc);
      params.digest->close_round(instr.token_messages - round_tokens_before);
    }
    round_span.arg("tokens", instr.token_messages - round_tokens_before);
  }
}

}  // namespace

void run_flood_subphase(const graph::Overlay& overlay,
                        const std::vector<bool>& byz_mask,
                        const std::vector<bool>& crashed,
                        const Verifier& verifier, const FloodParams& params,
                        std::span<const Color> gen_color,
                        std::span<const Injection> injections,
                        FloodWorkspace& ws, sim::Instrumentation& instr) {
  const MidRunHooks* live = params.live;
  const NodeId n = live ? live->node_bound() : overlay.num_nodes();
  if (gen_color.size() != n || byz_mask.size() != n || crashed.size() != n) {
    throw std::invalid_argument("run_flood_subphase: size mismatch");
  }
  if (!params.region.empty() && params.region.size() != n) {
    throw std::invalid_argument("run_flood_subphase: region size mismatch");
  }
  if (live != nullptr && !params.region.empty()) {
    throw std::invalid_argument(
        "run_flood_subphase: live topology is incompatible with focused "
        "(region) floods");
  }
  ws.ensure(n);

  // Observability (pure read-side; inert unless obs::set_enabled). The
  // subphase span carries the flood geometry; each round span carries the
  // frontier it sent from and the token volume the sends produced.
  static const obs::Counter obs_rounds("flood.rounds");
  static const obs::Counter obs_tokens("flood.tokens");
  obs::Span subphase_span("flood.subphase");
  subphase_span.arg("steps", params.steps)
      .arg("focused", params.region.empty() ? 0 : 1);
  const std::uint64_t subphase_tokens_before = instr.token_messages;

  const FloodExec exec = resolve_flood_exec(params.exec);
  if (exec.mode == FloodMode::kParallel) {
    run_subphase_parallel(overlay, byz_mask, crashed, verifier, params,
                          gen_color, injections, ws, instr, exec.threads);
  } else {
    run_subphase_serial(overlay, byz_mask, crashed, verifier, params,
                        gen_color, injections, ws, instr);
  }

  instr.flood_rounds += params.steps;
  obs_rounds.add(params.steps);
  obs_tokens.add(instr.token_messages - subphase_tokens_before);
  subphase_span.arg("tokens", instr.token_messages - subphase_tokens_before);
}

}  // namespace byz::proto
