// Quickstart: estimate the size of a small-world overlay that contains
// Byzantine nodes mounting a color-injection attack.
//
//   $ ./quickstart [--n=4096] [--d=8] [--delta=0.5] [--seed=1]
//
// Walks through the whole public API: sample the H(n,d) ∪ L overlay, place
// Byzantine nodes, pick an adversary, run Algorithm 2, and summarize how
// many honest nodes obtained a constant-factor estimate of log2(n).
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

int main(int argc, char** argv) {
  using namespace byz;

  util::ArgParser args("quickstart", "Byzantine counting in one page");
  args.add_option("n", "network size", "4096");
  args.add_option("d", "H-degree (even, >= 4)", "8");
  args.add_option("delta", "Byzantine budget exponent: B = n^(1-delta)", "0.5");
  args.add_option("seed", "trial seed", "1");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<graph::NodeId>(args.integer("n"));
  const auto d = static_cast<std::uint32_t>(args.integer("d"));
  const double delta = args.real("delta");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.integer("seed"));

  // 1. Sample the network model of the paper: H(n,d) (expander) plus the
  //    k-hop lattice edges L (clustering). Nodes know only their channels.
  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  const auto overlay = graph::Overlay::build(params);
  BYZ_INFO << "overlay: n=" << n << " d=" << d << " k=" << overlay.k()
           << " |E(H)|=" << overlay.h().num_edges()
           << " |E(G)|=" << overlay.g().num_edges();

  // 2. Place B = n^(1-delta) Byzantine nodes uniformly at random (the
  //    paper's placement model) and arm them with the fake-color attack.
  util::Xoshiro256 placement(seed ^ 0xB12);
  const auto byz_count = sim::derive_byz_count(n, delta);
  const auto byz = graph::random_byzantine_mask(n, byz_count, placement);
  const auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  BYZ_INFO << "byzantine: " << byz_count << " nodes (delta="
           << util::format_double(delta, 2)
           << "), strategy=" << strategy->name();

  // 3. Run Algorithm 2.
  proto::ProtocolConfig cfg;  // defaults: eps=0.1, verification+crash rule on
  const auto result =
      proto::run_counting(overlay, byz, *strategy, cfg, seed ^ 0xC01);

  // 4. Verdict, Theorem-1 style.
  const auto acc = proto::summarize_accuracy(result, n);
  util::Table table("Byzantine counting verdict (truth: log2 n = " +
                    util::format_double(std::log2(static_cast<double>(n)), 2) +
                    ")");
  table.columns({"metric", "value"});
  table.row().cell("honest nodes").cell(acc.honest);
  table.row().cell("decided").cell(acc.decided);
  table.row().cell("crashed").cell(acc.crashed);
  table.row().cell("undecided").cell(acc.undecided);
  table.row().cell("estimate/log2(n) mean").cell(acc.mean_ratio, 3);
  table.row().cell("estimate/log2(n) min..max").cell(
      util::format_double(acc.min_ratio, 3) + " .. " +
      util::format_double(acc.max_ratio, 3));
  table.row().cell("fraction with constant-factor estimate")
      .cell(acc.frac_in_band, 4);
  table.row().cell("protocol rounds").cell(result.flood_rounds);
  table.row().cell("injections caught by verification")
      .cell(result.instr.injections_caught);
  table.note("Theorem 1: all but an eps-fraction of honest nodes end with a "
             "constant-factor estimate of log n.");
  std::cout << table;
  return 0;
}
