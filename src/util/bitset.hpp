// Word-packed node sets for the flood kernel. The frontier / next-frontier /
// touched sets are dense over [0, n) and iterated in ascending node order,
// which a 64-bit word scan does in n/64 loads with branch-free bit
// extraction — and, crucially for the parallel kernel, lets worker threads
// publish membership with a single relaxed fetch_or while the merged set
// still reads back in deterministic node-id order.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/aligned.hpp"

namespace byz::util {

class Bitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  Bitset() = default;
  explicit Bitset(std::size_t n) { assign(n); }

  /// Resize to n bits, all cleared.
  void assign(std::size_t n) {
    size_ = n;
    words_.assign((n + kWordBits - 1) / kWordBits, 0);
  }

  std::size_t size() const { return size_; }
  std::size_t num_words() const { return words_.size(); }
  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  void set(std::size_t i) { words_[i / kWordBits] |= Word{1} << (i % kWordBits); }
  void reset(std::size_t i) {
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }

  /// Thread-safe set; relaxed order is enough because readers only look
  /// after the parallel region's implicit barrier.
  void set_atomic(std::size_t i) {
    std::atomic_ref<Word> w(words_[i / kWordBits]);
    w.fetch_or(Word{1} << (i % kWordBits), std::memory_order_relaxed);
  }

  void clear() {
    if (!words_.empty())
      std::memset(words_.data(), 0, words_.size() * sizeof(Word));
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (Word w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool any() const {
    for (Word w : words_)
      if (w) return true;
    return false;
  }

  /// Visit set bits in ascending index order.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(w));
        f(wi * kWordBits + bit);
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t size_ = 0;
  aligned_vector<Word> words_;
};

}  // namespace byz::util
