// Setup stage of Algorithm 2 (lines 1-2) and Lemma 3:
//   1. every node presents its G-adjacency list to its G-neighbors,
//   2. each honest node v cross-checks the claims pairwise: if u asserts
//      "w is (not) my neighbor" while w asserts the opposite, v has received
//      contradictory information and crashes (goes into crash failure),
//   3. absent conflicts, v reconstructs the H-vs-L classification of its
//      edges via the subset criterion in Lemma 3's proof.
//
// Honest nodes always tell the truth, so honest-honest claim pairs can
// never conflict; every conflict involves a Byzantine claim. The crash-set
// computation exploits this (it only examines pairs touching a Byzantine
// node), which makes it exact AND cheap — the message-level engine and the
// fast path share it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/small_world.hpp"
#include "sim/instrumentation.hpp"

namespace byz::proto {

/// Adjacency claims: honest nodes implicitly claim the truth; Byzantine
/// nodes may override their claimed list (one list, shown to everyone —
/// IDs cannot be faked per §2.1, but lists can lie).
class ClaimSet {
 public:
  explicit ClaimSet(const graph::Overlay& overlay)
      : overlay_(&overlay), overrides_(overlay.num_nodes()) {}

  /// Installs a lying claim for node u (sorted internally).
  void set_claim(graph::NodeId u, std::vector<graph::NodeId> claimed);

  /// The list u presents (truth unless overridden).
  [[nodiscard]] std::span<const graph::NodeId> claimed(graph::NodeId u) const;

  /// True iff u presents the truth.
  [[nodiscard]] bool truthful(graph::NodeId u) const {
    return !overrides_[u].has_value();
  }

  [[nodiscard]] const graph::Overlay& overlay() const { return *overlay_; }

 private:
  const graph::Overlay* overlay_;
  std::vector<std::optional<std::vector<graph::NodeId>>> overrides_;
};

/// Algorithm 2 line 2, for a single node: does v receive contradictory
/// claims from two of its G-neighbors? (Pairwise XOR test.) Exact but
/// O(deg^2); used by tests and small-n runs.
[[nodiscard]] bool detects_conflict(const ClaimSet& claims, graph::NodeId v);

/// Crash set over all honest nodes, computed with the byz-pair shortcut
/// (provably equal to running detects_conflict everywhere — see the
/// equivalence test). Counts setup traffic into `instr` if given.
[[nodiscard]] std::vector<bool> compute_crash_set(
    const ClaimSet& claims, const std::vector<bool>& byz_mask,
    sim::Instrumentation* instr = nullptr);

/// Lemma-3 reconstruction result for one node.
struct Reconstruction {
  bool conflict = false;                      ///< v would crash
  std::vector<graph::NodeId> h_neighbors;     ///< believed distance-1 nodes
};

/// Reconstructs v's believed H-neighborhood from the claims: the maximal
/// elements of the intersection partial order {N(u) ∩ N(v) : u ∈ N(v)}.
/// With truthful claims and a locally tree-like neighborhood this equals
/// the true H-neighbor set (Lemma 3); the unit tests assert exactly that.
[[nodiscard]] Reconstruction reconstruct_neighborhood(const ClaimSet& claims,
                                                      graph::NodeId v);

}  // namespace byz::proto
