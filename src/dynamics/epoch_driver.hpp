// Epoch driver: replays a churn trace against a MutableOverlay and re-runs
// the counting protocol every epoch — the continuous-estimation loop a
// long-running deployment would operate, versus the repo's one-shot
// experiments. Per epoch it records fresh accuracy against the true n(t),
// the STALENESS of the previous epoch's estimates (how wrong a node that
// skips re-estimation becomes as the network drifts), and optionally runs
// the message-level sim::Engine on the same snapshot to assert the two
// protocol tiers still agree decision-for-decision under churn.
//
// The driver selects between the repo's churn models and estimation tiers
// (docs/ARCHITECTURE.md has the full matrix):
//
//   * snapshot churn (default): events apply BETWEEN runs; each run
//     executes on a frozen snapshot. IncrementalConfig layers the
//     incremental tiers on top — dirty-ball snapshots, the decision-exact
//     warm start, the ε-warm phase skip (divergence accounted against the
//     paper's ε·n outlier budget and asserted when verify_warm is on),
//     and drift-adaptive cadence.
//   * mid-run churn (ChurnRunConfig::mid_run): the epoch's events are
//     placed on individual flood rounds — uniformly, or adversarially
//     timed/targeted (adversary/midrun_schedule.hpp) — and strike DURING
//     the run (dynamics/midrun.*), under a MembershipPolicy that decides
//     how the in-flight run reacts. The IncrementalConfig tiers COMPOSE
//     with it (the steady-state hot path): each epoch's run executes on
//     IncrementalEngine::snapshot() — the mid-run and flushed splices flow
//     through the overlay's SpliceObserver, so the next snapshot
//     recomputes only the balls they dirtied — warm-starts its run-start
//     Verifier from the stable-id row cache, may enter at the ε-warm
//     phase, and skips drift-quiet epochs adaptively (those epochs apply
//     their events between-runs style). run_engine doubles as the
//     per-epoch E26 oracle: the message-level engine replays the identical
//     schedule (composed inputs included, on its own WarmState copy) and
//     must agree bitwise. verify_warm shadows each composed run with a
//     cold mid-run replay on copies — exact-warm epochs must match
//     decision-for-decision; ε-warm epochs must stay within the budget.
//     The one genuinely unsupported combination: eps_warm + verify_warm +
//     kFrontierLeaves (frontier victims depend on the observed wavefront,
//     which an ε-entry run shifts, so the cold shadow floods a DIFFERENT
//     overlay evolution and its divergence count is meaningless).
//
// Everything is derived from cfg.seed with SplitMix64 streams and replayed
// sequentially, so a churn run is bitwise reproducible regardless of how
// many scheduler workers fan out the surrounding trials.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/strategies.hpp"
#include "dynamics/churn_trace.hpp"
#include "dynamics/midrun.hpp"
#include "dynamics/mutable_overlay.hpp"
#include "protocols/estimate.hpp"
#include "protocols/fastpath.hpp"
#include "protocols/warm_start.hpp"

namespace byz::dynamics {

/// The incremental-estimation knobs (all off = the PR-2 behavior: full
/// snapshot rebuild plus a cold protocol run every epoch).
struct IncrementalConfig {
  /// Dirty-ball snapshot maintenance: snapshot() recomputes only the BFS
  /// balls within distance k of a splice endpoint and reuses the rest.
  bool incremental = false;
  /// Debug mode: every incremental snapshot is cross-checked bitwise
  /// against a full rebuild (throws std::logic_error on divergence).
  bool verify_snapshots = false;
  /// Warm-start the protocol from the previous epoch's estimates and
  /// verification state (proto::run_counting_warm).
  bool warm_start = false;
  /// Shadow-run the cold protocol on every snapshot and assert the warm
  /// decisions (status + estimates) match exactly; also fills
  /// EpochStats::messages_cold for parity reporting. With eps_warm the
  /// assertion weakens to the ε accounting invariant: divergent decisions
  /// <= floor(eps_budget * honest members) per epoch (throws past it).
  bool verify_warm = false;
  /// ε-warm tier (requires warm_start): skip the early phases of warm runs
  /// entirely, spending the paper's ε·n outlier budget on phase-skip
  /// savings (proto::WarmConfig::eps_*; E25 measures the trade).
  bool eps_warm = false;
  /// Divergence budget as a fraction of honest members per epoch.
  double eps_budget = 0.10;
  /// Safety margin below the quantile-chosen entry phase (see
  /// proto::WarmConfig::eps_margin).
  std::uint32_t eps_margin = 1;
  /// Warm safety bound (see proto::WarmConfig). With `adaptive` on, the
  /// effective bound is raised to at least 2*drift_threshold: estimating
  /// AT the threshold is the scheduler's cadence, not excess drift.
  proto::WarmConfig warm;
  /// Drift-adaptive epoch scheduling: re-estimate only when the membership
  /// drift accumulated since the last estimation crosses drift_threshold,
  /// instead of on every epoch.
  bool adaptive = false;
  /// Fraction of the last-estimated membership that must churn before the
  /// adaptive scheduler re-estimates.
  double drift_threshold = 0.02;
};

struct ChurnRunConfig {
  ChurnTraceParams trace;
  std::uint32_t d = 8;
  std::uint32_t k = 0;  ///< 0 = paper k
  /// Initial Byzantine placement: floor(n0^(1-delta)) uniform nodes.
  double delta = 0.7;
  adv::StrategyKind strategy = adv::StrategyKind::kFakeColor;
  adv::ChurnAdversary churn_adversary = adv::ChurnAdversary::kNone;
  proto::ProtocolConfig protocol;
  std::uint64_t seed = 1;
  /// Also run the message-level Engine per snapshot and compare outcomes.
  bool run_engine = false;
  /// Accuracy band for est/log2(n(t)) (summarize_accuracy defaults).
  double band_lo = 0.05;
  double band_hi = 3.0;
  /// Incremental-tier switches (snapshot reuse, warm start, adaptive
  /// scheduling). run_engine with warm_start requires verify_warm: the
  /// message-level Engine is compared against the cold tier.
  IncrementalConfig incremental;
  /// Mid-protocol churn (dynamics/midrun.*): apply each epoch's
  /// joins/leaves DURING its estimation run — spread over the run's
  /// expected flood rounds — instead of between runs. The incremental
  /// tier COMPOSES with it (see the file comment): dirty-ball snapshots
  /// feed the run start, warm rows seed its Verifier, ε-warm picks its
  /// entry phase, and adaptive cadence skips drift-quiet epochs (their
  /// events then apply between-runs style). run_engine IS supported:
  /// each epoch the message-level sim::Engine replays the identical
  /// schedule from a copy of the pre-run state (composed inputs included)
  /// and EpochStats.engine_match records whether the two tiers agreed
  /// bitwise (the E26 oracle). The only rejected combination is eps_warm
  /// + verify_warm + kFrontierLeaves — the ε cold shadow would flood a
  /// different overlay evolution, voiding the divergence accounting.
  struct MidRunMode {
    bool enabled = false;
    proto::MembershipPolicy policy =
        proto::MembershipPolicy::kReadmitNextPhase;
    /// Event TIMING and leave-victim policy
    /// (adversary/midrun_schedule.hpp): kUniform reproduces the PR-4
    /// uniform spread bitwise; the adversarial strategies spend the same
    /// per-epoch budget at the worst rounds (E27).
    adv::MidRunScheduleStrategy schedule =
        adv::MidRunScheduleStrategy::kUniform;
  };
  MidRunMode mid_run;
  /// Divergence-forensics audit (obs/digest.hpp): digest every execution
  /// at this driver's oracle seams — the per-epoch engine oracle and the
  /// verify_warm cold shadow — and render a byzobs/forensics/v1 report on
  /// any divergence, BEFORE the failure is recorded or thrown. Pure
  /// read-side: outcomes and every EpochStats counter are bitwise
  /// unaffected (only forensics_path, an audit-only field, is set).
  bool audit = false;
  /// Directory forensic reports are written to ("" = render-only; the
  /// report text still reaches thrown exception messages via its path).
  std::string audit_dir;
  /// Flood-kernel selection forwarded to every fastpath-tier run this
  /// driver launches (cold, warm, ε-warm, and mid-run). The parallel
  /// kernel is bitwise-equivalent to the serial oracle, so every
  /// EpochStats field — including the engine-oracle and verify_warm
  /// comparisons — is independent of it.
  proto::FloodExec flood;
  /// Cross-ALGORITHM shadow oracle (analysis/backend_compare.hpp): after
  /// each estimating epoch, run this registered backend AND the cold
  /// algo2 reference on the epoch's post-churn snapshot (identical
  /// overlay/byz/strategy, a dedicated seed stream) and record whether
  /// each landed in its own declared bound and the pair agreed within the
  /// combined band (EpochStats::shadow_*). Unlike the engine oracle —
  /// same algorithm, different execution tier — this catches bugs that
  /// shift BOTH tiers identically. Pure read-side: it perturbs no rng
  /// stream, no warm state, and no existing counter. "" = off; an unknown
  /// name throws up front with the registered-name list.
  std::string shadow_backend;
};

struct EpochStats {
  graph::NodeId n_true = 0;       ///< membership after this epoch's churn
  graph::NodeId byz_alive = 0;
  std::uint32_t joins = 0;        ///< honest + sybil arrivals applied
  std::uint32_t leaves = 0;
  proto::Accuracy fresh;          ///< this epoch's run, judged against n(t)
  std::uint64_t stale_nodes = 0;  ///< honest survivors carrying a previous
                                  ///< epoch's estimate
  std::uint64_t stale_in_band = 0;
  double stale_frac_in_band = 0.0;
  std::uint64_t messages = 0;     ///< protocol messages this epoch
  bool engine_match = true;       ///< engine == fastpath (when run_engine)
  // --- incremental tier ---
  bool estimated = true;          ///< false = adaptive scheduler skipped
  double drift = 0.0;             ///< accumulated drift entering the epoch
  std::uint64_t balls_recomputed = 0;  ///< snapshot balls BFS'd this epoch
  std::uint64_t balls_reused = 0;      ///< balls carried from last snapshot
  bool warm_used = false;         ///< warm path taken (vs cold fallback)
  std::uint64_t subphases_scheduled = 0;  ///< paper schedule for the run
  std::uint64_t subphases_executed = 0;   ///< after lazy short-circuiting
  /// Verifier rows carried over from the stable-id cache. Mid-run mode:
  /// run-start rows reused from WarmState (MidRunStats::warm_rows_reused).
  std::uint64_t verify_rows_reused = 0;
  /// Verifier rows computed fresh (dirty balls). Mid-run mode: fresh
  /// run-start rows plus the live kReadmitNextPhase refresh rows.
  std::uint64_t verify_rows_recomputed = 0;
  std::uint64_t messages_cold = 0;        ///< cold shadow run (verify_warm)
  // --- ε-warm tier ---
  bool eps_used = false;             ///< the epoch's run skipped phases
  std::uint32_t eps_entry_phase = 1;
  std::uint64_t eps_budget_nodes = 0;       ///< floor(eps_budget * honest)
  std::uint64_t eps_divergent = 0;   ///< decisions differing from the cold
                                     ///< shadow (verify_warm only); the
                                     ///< driver throws past the budget
  std::uint64_t eps_skipped_subphases = 0;
  // --- mid-run churn ---
  std::uint64_t midrun_events_applied = 0;  ///< at their scheduled round
  std::uint64_t midrun_events_flushed = 0;  ///< after early termination
  std::uint64_t midrun_admitted = 0;        ///< joiners admitted mid-run
  std::uint64_t midrun_verifier_refreshes = 0;
  std::uint64_t midrun_frontier_leaves = 0; ///< departures that struck the
                                            ///< observed flood wavefront
  // --- divergence audit (ChurnRunConfig::audit only) ---
  /// Path of the forensics report written for this epoch's engine-oracle
  /// divergence ("" = no divergence, no audit, or no audit_dir). The
  /// verify_warm seam throws instead and embeds its report path in the
  /// exception message.
  std::string forensics_path;
  /// Closed run-level digest of this epoch's estimation run (0 when audit
  /// is off, the epoch was skipped, or the obs layer is compiled out).
  /// Scenarios fold these into DIGEST_<exp>.json sidecars.
  std::uint64_t run_digest = 0;
  // --- cross-backend shadow (ChurnRunConfig::shadow_backend only) ---
  /// True when the shadow comparison ran this epoch (skipped epochs run
  /// no shadow). The pass/fail fields default to TRUE so epochs without a
  /// shadow never trip an aggregate all-epochs guard.
  bool shadow_ran = false;
  double shadow_median_ratio = 0.0;  ///< shadow med est / log2 n(t)
  double shadow_ratio = 0.0;         ///< algo2 median est / shadow median est
  bool shadow_in_band = true;        ///< shadow honored its own bound
  bool shadow_agree = true;          ///< pair ratio within the combined band

  /// Bitwise identity over every counter — the oracle the flood-kernel
  /// independence tests assert across thread counts.
  bool operator==(const EpochStats&) const = default;
};

struct ChurnRunResult {
  ChurnTrace trace;
  std::vector<EpochStats> epochs;
};

/// Replays cfg.trace and runs estimation on every epoch snapshot.
[[nodiscard]] ChurnRunResult run_churn(const ChurnRunConfig& cfg);

/// Epochs the fresh in-band fraction needs to climb back to >= threshold
/// from `burst_epoch` on: 0 = already recovered at the burst epoch itself,
/// -1 = never within the trace. The threshold must actually be MET by some
/// epoch of the trace: a burst at (or past) the final epoch whose in-band
/// fraction never re-enters the band reports -1, not a recovery.
[[nodiscard]] std::int32_t recovery_epochs(const ChurnRunResult& result,
                                           std::uint32_t burst_epoch,
                                           double threshold = 0.9);

}  // namespace byz::dynamics
