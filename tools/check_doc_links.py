#!/usr/bin/env python3
"""Fail CI when an intra-repo markdown reference is broken.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Checks three classes of references in each given markdown file:
  * inline links  [text](target)  whose target is not a URL: the
    referenced path (resolved relative to the file, any #fragment
    stripped) must exist in the working tree;
  * #anchor fragments of intra-repo markdown links — both in-page
    ([text](#section)) and cross-document ([text](docs/FOO.md#section)):
    the fragment must name a heading of the target document, slugified
    the way GitHub does (lowercase, punctuation stripped, spaces to
    dashes, -N suffixes for duplicates), or an explicit
    <a name="..."/id="..."> anchor. docs/PROTOCOL.md's paper-to-code
    walkthrough leans on these heavily, so they rot like paths do;
  * backtick path mentions like `src/dynamics/midrun.hpp` or
    `docs/ARCHITECTURE.md` — single-token code spans that look like repo
    paths (contain a '/' and end in a known source/doc extension, with a
    trailing ".*"/"*" glob meaning "this basename prefix exists"). These
    are how the repo's prose cites code, so they rot just like links.

External URLs (http/https/mailto) are out of scope — this guard is about
the repo staying self-consistent, not the internet staying up.
"""

import glob
import os
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\s]+)`")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXPLICIT_ANCHOR = re.compile(r"<a\s+(?:name|id)=[\"']([^\"']+)[\"']")
FENCE = re.compile(r"^(```|~~~)")
MD_LINK_TEXT = re.compile(r"\[([^\]]*)\]\([^)]*\)")
PATH_EXTS = (".md", ".hpp", ".cpp", ".py", ".yml", ".txt", ".json")


def github_slug(heading):
    """GitHub's heading-to-anchor slug (modulo rare unicode corner cases)."""
    text = MD_LINK_TEXT.sub(r"\1", heading)   # [text](url) -> text
    text = text.replace("`", "")              # code spans keep their content
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)      # drop punctuation
    return text.replace(" ", "-")


def collect_anchors(md_path):
    """All anchors a #fragment may legally target in md_path."""
    anchors = set()
    seen = {}
    in_fence = False
    for line in open(md_path, encoding="utf-8"):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            slug = github_slug(match.group(2))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
        for explicit in EXPLICIT_ANCHOR.finditer(line):
            anchors.add(explicit.group(1))
    return anchors


def candidate_paths(doc_path, target):
    """Paths (relative to the doc, then the repo root) a target may mean."""
    target = target.split("#", 1)[0]
    if not target:
        return []
    rel = os.path.normpath(os.path.join(os.path.dirname(doc_path), target))
    root = os.path.normpath(target)
    return [rel] if rel == root else [rel, root]


def span_is_pathlike(span):
    if "/" not in span or span.startswith(("http://", "https://")):
        return False
    if span.endswith((".*", "*")):
        return span.rstrip("*").rstrip(".").endswith("/") is False
    return span.endswith(PATH_EXTS)


def check_file(doc_path, anchor_cache):
    errors = []
    text = open(doc_path, encoding="utf-8").read()

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = collect_anchors(path)
        return anchor_cache[path]

    for match in INLINE_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            # Pure in-page anchor: must name a heading of THIS document.
            fragment = target[1:]
            if fragment and fragment not in anchors_of(doc_path):
                errors.append(
                    f"{doc_path}: broken in-page anchor '{target}'")
            continue
        hits = [p for p in candidate_paths(doc_path, target)
                if os.path.exists(p)]
        if not hits:
            errors.append(f"{doc_path}: broken link target '{target}'")
            continue
        if "#" in target:
            # Cross-document anchor: only markdown targets have heading
            # anchors worth validating.
            fragment = target.split("#", 1)[1]
            if fragment and hits[0].endswith(".md") and \
                    fragment not in anchors_of(hits[0]):
                errors.append(
                    f"{doc_path}: link '{target}' names no heading/anchor "
                    f"'#{fragment}' in {hits[0]}")

    for match in CODE_SPAN.finditer(text):
        span = match.group(1)
        if not span_is_pathlike(span):
            continue
        if span.endswith(("*", ".*")):
            stem = span.rstrip("*").rstrip(".")
            hits = glob.glob(stem + "*") or glob.glob(
                os.path.join(os.path.dirname(doc_path), stem + "*"))
            if not hits:
                errors.append(f"{doc_path}: no files match cited glob '{span}'")
        elif not any(os.path.exists(p)
                     for p in candidate_paths(doc_path, span)):
            errors.append(f"{doc_path}: cited path '{span}' does not exist")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    all_errors = []
    anchor_cache = {}
    for doc in argv[1:]:
        if not os.path.exists(doc):
            all_errors.append(f"document not found: {doc}")
            continue
        all_errors.extend(check_file(doc, anchor_cache))
    for err in all_errors:
        print(f"ERROR: {err}")
    if not all_errors:
        print(f"ok: {len(argv) - 1} documents, all intra-repo references "
              "and anchors resolve")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
