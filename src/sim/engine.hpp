// Message-level reference implementation of the counting protocols.
//
// Unlike the array fast path (protocols/fastpath.*), this engine represents
// every token as a message object moving between per-node inboxes, and each
// honest node runs its own local state machine over its inbox — the way one
// would implement the protocol on a real network. Byzantine sends are
// composed from the Strategy exactly as in the fast path, and the Verifier,
// ClaimSet/crash rule, coin table, and schedule are shared, so the two
// tiers must produce IDENTICAL per-node decisions on the same seed; the
// equivalence suite asserts that, plus equality of the message accounting.
//
// Intended for n up to a few thousand (tests, E7 message accounting).
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"
#include "protocols/fastpath.hpp"
#include "protocols/verification.hpp"

namespace byz::sim {

class Engine {
 public:
  Engine(const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
         adv::Strategy& strategy, const proto::ProtocolConfig& cfg,
         std::uint64_t color_seed);

  /// Executes setup + phases until all honest nodes decided/crashed or the
  /// phase cap is reached.
  [[nodiscard]] proto::RunResult run();

  /// Per-round message volume trace (index = flooding round), for E7.
  [[nodiscard]] const std::vector<std::uint64_t>& round_messages() const {
    return round_messages_;
  }

 private:
  struct Token {
    graph::NodeId from;
    proto::Color color;
  };

  /// Local state of one honest node's protocol instance.
  struct NodeMachine {
    bool crashed = false;
    bool decided = false;
    std::uint32_t estimate = 0;
    // Per-subphase registers.
    proto::Color own = 0;
    proto::Color known = 0;
    std::uint32_t fresh_step = 0;
    proto::Color best_before = 0;
    proto::Color last_step = 0;
    bool fired_this_phase = false;

    void begin_subphase(proto::Color own_color) noexcept {
      own = own_color;
      known = own_color;
      fresh_step = 0;
      best_before = 0;
      last_step = 0;
    }
  };

  void run_subphase(std::uint32_t phase, std::uint32_t j, std::uint32_t s);

  const graph::Overlay& overlay_;
  const std::vector<bool>& byz_;
  adv::Strategy& strategy_;
  proto::ProtocolConfig cfg_;
  std::uint64_t color_seed_;
  World world_;
  proto::Verifier verifier_;

  std::vector<NodeMachine> nodes_;
  std::vector<std::vector<Token>> inbox_;
  proto::RunResult result_;
  std::vector<std::uint64_t> round_messages_;
};

}  // namespace byz::sim
