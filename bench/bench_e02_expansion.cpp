// E2 — Spectral expansion of H(n,d) (Lemma 19 / Friedman near-Ramanujan).
//
// Reports lambda2 against the Ramanujan value 2*sqrt(d-1), the Cheeger
// bounds (d-lambda2)/2 <= h <= sqrt(2d(d-lambda2)), and a constructive
// sweep-cut upper bound on the edge expansion.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct Cell {
  graph::NodeId n = 0;
  std::uint32_t d = 0;
  double lambda2 = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double sweep = 0.0;
  std::uint32_t iterations = 0;
};

void run_e02(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(15));

  std::vector<Cell> grid;
  for (const std::uint32_t d : {6u, 8u, 12u}) {
    for (const auto n : sizes) grid.push_back({n, d, 0, 0, 0, 0, 0});
  }
  const auto cells = ctx.scheduler().map(grid.size(), [&](std::uint64_t i) {
    Cell cell = grid[i];
    util::Xoshiro256 rng(0xE2 + cell.n + cell.d);
    const auto h = graph::build_hamiltonian_graph(cell.n, cell.d, rng);
    const auto spec = graph::second_eigenvalue(h, 3000, 1e-10, 0xE2);
    const auto bounds = graph::cheeger_bounds(cell.d, spec.lambda2);
    cell.lambda2 = spec.lambda2;
    cell.lower = bounds.lower;
    cell.upper = bounds.upper;
    cell.sweep = graph::sweep_cut_expansion(h, spec.vector2);
    cell.iterations = spec.iterations;
    return cell;
  });

  util::Table table("E2: H(n,d) expansion (power iteration + sweep cut)");
  table.columns({"n", "d", "lambda2", "2*sqrt(d-1)", "h lower", "h upper",
                 "sweep-cut h", "iters"});
  std::vector<double> gap_ratio;
  for (const auto& cell : cells) {
    table.row()
        .cell(std::uint64_t{cell.n})
        .cell(cell.d)
        .cell(cell.lambda2, 3)
        .cell(2.0 * std::sqrt(cell.d - 1.0), 3)
        .cell(cell.lower, 3)
        .cell(cell.upper, 3)
        .cell(cell.sweep, 3)
        .cell(cell.iterations);
    gap_ratio.push_back(cell.lambda2 / (2.0 * std::sqrt(cell.d - 1.0)));
  }
  table.note("Friedman/Lemma 19: random regular graphs are near-Ramanujan "
             "(lambda2 ~ 2 sqrt(d-1)); the true edge expansion h lies in "
             "[h lower, min(h upper, sweep-cut h)].");
  ctx.emit(table);
  ctx.metric("lambda2_over_ramanujan", bench_core::quantiles_json(gap_ratio));
}

}  // namespace

BYZBENCH_REGISTER(e02) {
  ScenarioSpec spec;
  spec.id = "e02";
  spec.title = "H(n,d) spectral expansion";
  spec.claim = "Lemma 19: H(n,d) is near-Ramanujan, lambda2 ~ 2 sqrt(d-1)";
  spec.grid = {{"d", {"6", "8", "12"}}, pow2_axis(10, 15)};
  spec.base_trials = 1;
  spec.metrics = {"lambda2_over_ramanujan"};
  spec.run = run_e02;
  return spec;
}
