// Adversarial MID-RUN churn schedules: when the adversary controls not
// just which nodes churn but WHEN they churn relative to the in-flight
// flood, uniform-over-rounds timing (dynamics::derive_schedule) is the
// weakest workload it would ever choose. The paper's model is an adaptive
// adversary (§2.1: full information, including the current protocol
// state), and the companion Byzantine-resilient counting work (PAPERS.md)
// analyzes frontier-directed disruption explicitly — so this module
// derives schedules that spend the SAME ChurnEpoch event budget at the
// worst moments instead:
//
//   kUniform            events spread uniformly over the expected rounds —
//                       bitwise identical to dynamics::derive_schedule;
//                       the clean-churn baseline E27 compares against.
//   kFrontierLeaves     departures strike at wavefront peaks — the
//                       mid-subphase steps of the deepest phases the run
//                       is expected to reach, where the flood frontier is
//                       widest — and the replay-time victim choice
//                       (pick_frontier_departure) hits nodes ON the
//                       observed frontier, silencing exactly the relays
//                       that were about to spread fresh maxima. Joins
//                       stay uniform.
//   kBoundaryJoinStorm  every join lands on the LAST round of some phase,
//                       so under kReadmitNextPhase the whole storm is
//                       admitted together at the very next boundary —
//                       maximal admission batches and Verifier-rebuild
//                       pressure with minimal pre-admission dwell time.
//                       Departures stay uniform.
//
// Contract shared with the uniform path: the schedule spends EXACTLY the
// epoch's {joins, sybil_joins, leaves} (matched budgets — E27's accuracy
// comparison is apples to apples), every round lies in [0, horizon), and
// derivation is a pure function of (epoch, horizon, seed, strategy,
// d, schedule config) — bitwise reproducible for any --jobs value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamics/churn_schedule.hpp"
#include "dynamics/churn_trace.hpp"
#include "dynamics/mutable_overlay.hpp"
#include "protocols/schedule.hpp"
#include "util/rng.hpp"

namespace byz::adv {

enum class MidRunScheduleStrategy : std::uint8_t {
  kUniform,           ///< uniform rounds, uniform victims (the baseline)
  kFrontierLeaves,    ///< leaves timed + targeted at the flood wavefront
  kBoundaryJoinStorm, ///< joins packed onto phase-final rounds
};

[[nodiscard]] const char* to_string(MidRunScheduleStrategy strategy);
[[nodiscard]] std::vector<MidRunScheduleStrategy>
all_midrun_schedule_strategies();

/// Derives one run's mid-run schedule from a trace epoch's event budget
/// (see the file comment for per-strategy timing). `horizon_rounds` is the
/// run's expected round count (dynamics::expected_horizon_rounds); `d` and
/// `schedule` let the adversarial strategies resolve phase geometry —
/// which global rounds are mid-subphase peaks or phase-final rounds.
/// kUniform delegates to dynamics::derive_schedule bitwise.
[[nodiscard]] dynamics::ChurnSchedule derive_adversarial_schedule(
    const dynamics::ChurnEpoch& epoch, std::uint64_t horizon_rounds,
    std::uint64_t seed, MidRunScheduleStrategy strategy, std::uint32_t d,
    const proto::ScheduleConfig& schedule);

/// Replay-time victim choice for kFrontierLeaves: a uniform draw over the
/// honest alive members of `frontier_stable` (stable ids — the wavefront
/// the hooks observed at the departure round, mapped out of run-id space).
/// Falls back to a uniform honest alive node when the frontier holds no
/// honest target, then to any alive node — exactly one rng draw per call
/// on every path, like pick_departure.
[[nodiscard]] graph::NodeId pick_frontier_departure(
    const dynamics::MutableOverlay& overlay, const std::vector<bool>& byz,
    std::span<const graph::NodeId> frontier_stable, util::Xoshiro256& rng);

}  // namespace byz::adv
