// Message/round/byte accounting shared by the message-level engine and the
// fast path. The two tiers count the same logical events so that the
// equivalence tests can compare them directly.
//
// Byte model ("small-sized messages", §2.1): a token message carries one
// color (4B) + header (8B source/dest ids); an adjacency claim carries its
// list of 4B ids; a verification query/response carries 2 ids + color.
#pragma once

#include <cstdint>

namespace byz::sim {

struct Instrumentation {
  std::uint64_t setup_messages = 0;
  std::uint64_t setup_bytes = 0;
  std::uint64_t token_messages = 0;
  std::uint64_t token_bytes = 0;
  std::uint64_t verify_messages = 0;  ///< query + response each count 1
  std::uint64_t verify_bytes = 0;
  std::uint64_t flood_rounds = 0;
  std::uint64_t injections_attempted = 0;
  std::uint64_t injections_accepted = 0;
  std::uint64_t injections_caught = 0;
  std::uint64_t max_node_round_sends = 0;  ///< peak per-node per-round fan-out
  std::uint64_t crashes = 0;

  /// Counter-for-counter equality — the equivalence suites' definition of
  /// "identical message accounting".
  bool operator==(const Instrumentation&) const = default;

  void merge(const Instrumentation& other) noexcept;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return setup_messages + token_messages + verify_messages;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return setup_bytes + token_bytes + verify_bytes;
  }

  // Byte-cost constants of the model.
  static constexpr std::uint64_t kTokenBytes = 12;
  static constexpr std::uint64_t kIdBytes = 4;
  static constexpr std::uint64_t kVerifyBytes = 16;

  void count_token(std::uint64_t count = 1) noexcept {
    token_messages += count;
    token_bytes += count * kTokenBytes;
  }
  void count_setup_list(std::uint64_t list_len) noexcept {
    setup_messages += 1;
    setup_bytes += 8 + list_len * kIdBytes;
  }
  void count_verification(std::uint64_t round_trips) noexcept {
    verify_messages += 2 * round_trips;
    verify_bytes += 2 * round_trips * kVerifyBytes;
  }
};

}  // namespace byz::sim
