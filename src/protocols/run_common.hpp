// Backend-neutral run machinery shared by every proto::Estimator backend
// (Algorithm 1/2 in fastpath.*, Byzantine-Resilient Counting in brc/*) and
// by the message-level engine: the tier-selection knobs every run accepts
// (RunControls), the phase-state digest fold both execution tiers emit at
// the same semantic points, and the mid-run membership sweeps (joiner
// admission at phase boundaries, departed reconciliation) that are policy,
// not algorithm. Hoisted out of fastpath.* so a second backend rides the
// same churn/observability/forensics plumbing without depending on the
// Algorithm-2 runner.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"
#include "protocols/flooding.hpp"
#include "protocols/midrun.hpp"
#include "protocols/verification.hpp"

namespace byz::obs {
class RunDigester;
}  // namespace byz::obs

namespace byz::proto {

/// Extension points for a counting run. The warm-tier pair (lazy_subphases,
/// verifier) is DECISION-EXACT: the per-node status/estimate vectors are
/// bitwise identical to the plain run for every input (only message/round
/// accounting changes). start_phase and midrun deliberately are NOT — they
/// are the ε-warm and mid-run-churn tiers, whose divergence is bounded and
/// accounted elsewhere (warm_start.hpp, dynamics/midrun.hpp). Not every
/// backend supports every knob — Estimator::supports declares the matrix,
/// and a backend throws std::invalid_argument on a knob it cannot honor.
struct RunControls {
  /// Lazy subphase evaluation: stop each phase at the first subphase after
  /// which every active node has fired. The fired flags are monotone
  /// within a phase and are the ONLY state subphases share, so the skipped
  /// subphases cannot change any decision — they are pure message cost.
  /// (Skipping whole PHASES, by contrast, is never decision-exact: with
  /// fresh per-epoch colors a poorly-connected node fails phase i's
  /// threshold with probability ~(1/2)^(m*alpha_i) for m live neighbors,
  /// so "nobody decides before the previous epoch's minimum" is a
  /// positive-probability bet, not an invariant.)
  bool lazy_subphases = false;
  /// Replaces the internally constructed Verifier; must be equivalent to
  /// Verifier(overlay, byz_mask, cfg.verification). The warm tier
  /// assembles it from cached rows, recomputing only dirty-ball nodes.
  const Verifier* verifier = nullptr;
  /// ε-warm phase skip: start the phase loop at this phase instead of 1,
  /// executing zero subphases for the skipped prefix. Any node that would
  /// have decided below start_phase decides at start_phase or later — a
  /// DIVERGENT decision the ε-warm tier accounts against the paper's ε·n
  /// outlier budget (WarmConfig::eps_*; E25 asserts the budget holds).
  /// 1 = no skip (the exact tiers).
  std::uint32_t start_phase = 1;
  /// Mid-protocol churn hooks (protocols/midrun.hpp): the run sizes its
  /// id space by node_bound(), the flood kernel resolves neighbors live,
  /// and phase boundaries apply the MembershipPolicy (joiner admission +
  /// verifier refresh). byz_mask must then cover node_bound() ids.
  /// Incompatible with lazy_subphases (skipped subphases would shift the
  /// churn-schedule clock, changing which round each event lands on) and
  /// with an external verifier (begin_phase owns the verifier);
  /// run_counting_with throws on those combinations. start_phase > 1 DOES
  /// compose: the global round clock is pre-advanced past the skipped
  /// prefix, so events scheduled there burst-apply at the entry phase's
  /// first round — the ε-warm × mid-run composition the epoch driver
  /// runs. Null = static run.
  MidRunHooks* midrun = nullptr;
  /// Divergence-forensics digester (obs/digest.hpp): when attached the run
  /// folds a hierarchical digest trail (round -> subphase -> phase -> run)
  /// at the same semantic points the message-level engine does, so two
  /// trails localize the first divergent round. Pure read-side; null = no
  /// digesting (the default).
  obs::RunDigester* digester = nullptr;
  /// Flood-kernel selection (flooding.hpp): kSerial is the scalar
  /// reference, kParallel the word-packed OpenMP kernel, kDefault the
  /// process default (BYZ_FLOOD_THREADS / set_default_flood_exec). The
  /// kernels are bitwise-equivalent at every thread count, so this knob is
  /// DECISION-EXACT like the warm-tier pair. A parallel run also batches
  /// the internally constructed Verifier's row precompute.
  FloodExec flood;
};

/// Folds the phase-begin protocol state into the digester's open phase
/// accumulator: per-node status/estimate, then the phase verifier's ball
/// rows and usable-chain lengths over ids [0, id_bound). Both execution
/// tiers (and every backend) call this at the same semantic point — right
/// after the phase's verifier is resolved — so per-phase digests are
/// comparable across tiers of the same backend.
void digest_phase_state(obs::RunDigester& digester, const Verifier& verifier,
                        std::span<const NodeStatus> status,
                        std::span<const std::uint32_t> estimate,
                        graph::NodeId id_bound);

/// Phase-boundary joiner admission under mid-run churn: asks the hooks'
/// MembershipPolicy for this phase's admissions, marks them as
/// participating, and activates the honest ones that can still decide.
/// Returns the Verifier the phase's floods must use (begin_phase owns it —
/// refreshed against the live topology under kReadmitNextPhase). `admitted`
/// is cleared and filled with the admitted run ids (callers fold it into
/// flight events).
[[nodiscard]] const Verifier* admit_at_phase_boundary(
    MidRunHooks& midrun, std::uint32_t phase,
    const std::vector<bool>& byz_mask, const std::vector<bool>& crashed,
    std::span<const NodeStatus> status, std::vector<std::uint8_t>& participates,
    std::vector<bool>& active, std::uint64_t& active_count,
    std::vector<graph::NodeId>& admitted);

/// End-of-phase departed sweep under mid-run churn: nodes that left the
/// overlay during the phase are no longer members — they take no estimate
/// and leave the active set before the backend's decide sweep reads its
/// per-phase state. Folds one digest term per newly departed node when a
/// digester is attached (the 0xDE9 tag both tiers use).
void sweep_departed(MidRunHooks& midrun, std::vector<bool>& active,
                    std::uint64_t& active_count, RunResult& result,
                    obs::RunDigester* digester);

/// Final run-level digest fold: one status<<32|estimate term per node id,
/// then close_run(). Every backend folds the identical shape so run-level
/// digests are comparable wherever outcomes must be.
void fold_run_outcome(obs::RunDigester& digester, const RunResult& result,
                      graph::NodeId id_bound);

}  // namespace byz::proto
