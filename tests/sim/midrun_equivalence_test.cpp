// Mid-run-churn equivalence suite — the E24 correctness anchor, the E26
// engine↔fastpath mid-run oracle, and the Verifier membership-policy
// properties:
//   (1) with an EMPTY round schedule, run_counting_midrun is bitwise
//       identical to the static proto::run_counting on the same snapshot —
//       statuses, estimates, phase/round counts, and every instrumentation
//       counter — under BOTH membership policies;
//   (2) on churn-free traces, treat-as-silent therefore never inflates any
//       estimate beyond the static-run bound (identity implies it; the
//       test asserts the bound explicitly so a future relaxation of (1)
//       still has to respect it);
//   (3) under real mid-run churn, treat-as-silent joiners are never
//       admitted — they finish the run kUndecided — while
//       readmit-next-phase admits them at phase boundaries;
//   (4) E26: at NONZERO mid-run churn rates the message-level engine and
//       the array fast path produce bitwise-identical MidRunOutcomes for
//       every rate/policy/schedule-strategy combination — including the
//       adversarial frontier-leave and boundary-join-storm schedules —
//       and the comparison itself is deterministic (repeatable bit for
//       bit, the --jobs independence contract).
#include <gtest/gtest.h>

#include <algorithm>

#include "dynamics/midrun.hpp"
#include "graph/categories.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;

struct Case {
  NodeId n0;
  std::uint32_t d;
  adv::StrategyKind strategy;
  proto::MembershipPolicy policy;
  std::uint64_t seed;
};

class MidRunParityTest : public ::testing::TestWithParam<Case> {};

TEST_P(MidRunParityTest, EmptyScheduleIsBitwiseIdenticalToStaticRun) {
  const Case c = GetParam();
  dynamics::MutableOverlay overlay(c.n0, c.d, /*k=*/0, c.seed);
  util::Xoshiro256 place_rng(util::mix_seed(c.seed, 0x0B12));
  std::vector<bool> byz = graph::random_byzantine_mask(
      c.n0, sim::derive_byz_count(c.n0, 0.6), place_rng);

  // Static reference run on the identical snapshot.
  const auto snap = overlay.snapshot();
  std::vector<bool> dense_byz(c.n0, false);
  for (NodeId i = 0; i < c.n0; ++i) {
    dense_byz[i] = byz[snap.dense_to_stable[i]];
  }
  proto::ProtocolConfig cfg;
  auto cold_strategy = adv::make_strategy(c.strategy);
  const auto expect = proto::run_counting(snap.overlay, dense_byz,
                                          *cold_strategy, cfg, c.seed ^ 0xC);

  // Mid-run-capable path, empty schedule.
  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = c.policy;
  util::Xoshiro256 churn_rng(util::mix_seed(c.seed, 0xC002));
  auto strategy = adv::make_strategy(c.strategy);
  const auto got = dynamics::run_counting_midrun(
      overlay, byz, *strategy, cfg, c.seed ^ 0xC, dynamics::ChurnSchedule{},
      mid_cfg, adv::ChurnAdversary::kNone, churn_rng);

  EXPECT_EQ(got.run.status, expect.status);
  EXPECT_EQ(got.run.estimate, expect.estimate);
  EXPECT_EQ(got.run.phases_executed, expect.phases_executed);
  EXPECT_EQ(got.run.flood_rounds, expect.flood_rounds);
  EXPECT_EQ(got.run.subphases_scheduled, expect.subphases_scheduled);
  EXPECT_EQ(got.run.subphases_executed, expect.subphases_executed);
  const auto& ia = got.run.instr;
  const auto& ib = expect.instr;
  EXPECT_EQ(ia.setup_messages, ib.setup_messages);
  EXPECT_EQ(ia.setup_bytes, ib.setup_bytes);
  EXPECT_EQ(ia.token_messages, ib.token_messages);
  EXPECT_EQ(ia.token_bytes, ib.token_bytes);
  EXPECT_EQ(ia.verify_messages, ib.verify_messages);
  EXPECT_EQ(ia.verify_bytes, ib.verify_bytes);
  EXPECT_EQ(ia.flood_rounds, ib.flood_rounds);
  EXPECT_EQ(ia.injections_attempted, ib.injections_attempted);
  EXPECT_EQ(ia.injections_accepted, ib.injections_accepted);
  EXPECT_EQ(ia.injections_caught, ib.injections_caught);
  EXPECT_EQ(ia.max_node_round_sends, ib.max_node_round_sends);
  EXPECT_EQ(ia.crashes, ib.crashes);

  // (2) the satellite property, stated as the bound the policy guarantees:
  // on a churn-free trace no estimate exceeds the static run's maximum.
  std::uint32_t static_max = 0;
  for (const auto est : expect.estimate) static_max = std::max(static_max, est);
  for (std::size_t v = 0; v < got.run.estimate.size(); ++v) {
    EXPECT_LE(got.run.estimate[v], static_max);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MidRunParityTest,
    ::testing::Values(
        Case{192, 6, adv::StrategyKind::kHonest,
             proto::MembershipPolicy::kTreatAsSilent, 7},
        Case{192, 6, adv::StrategyKind::kHonest,
             proto::MembershipPolicy::kReadmitNextPhase, 7},
        Case{256, 6, adv::StrategyKind::kFakeColor,
             proto::MembershipPolicy::kTreatAsSilent, 11},
        Case{256, 6, adv::StrategyKind::kFakeColor,
             proto::MembershipPolicy::kReadmitNextPhase, 11},
        Case{160, 8, adv::StrategyKind::kAdaptive,
             proto::MembershipPolicy::kTreatAsSilent, 23},
        Case{160, 8, adv::StrategyKind::kAdaptive,
             proto::MembershipPolicy::kReadmitNextPhase, 23},
        Case{224, 6, adv::StrategyKind::kSuppress,
             proto::MembershipPolicy::kTreatAsSilent, 31},
        Case{224, 6, adv::StrategyKind::kSuppress,
             proto::MembershipPolicy::kReadmitNextPhase, 31}));

/// Shared fixture for the with-churn policy properties.
dynamics::MidRunOutcome run_with_schedule(proto::MembershipPolicy policy,
                                          std::uint64_t seed,
                                          dynamics::ChurnSchedule* out_sched,
                                          NodeId* out_n0) {
  constexpr NodeId kN0 = 256;
  dynamics::MutableOverlay overlay(kN0, 6, 0, seed);
  util::Xoshiro256 place_rng(util::mix_seed(seed, 0x0B12));
  std::vector<bool> byz = graph::random_byzantine_mask(
      kN0, sim::derive_byz_count(kN0, 0.6), place_rng);

  dynamics::ChurnEpoch epoch;
  epoch.joins = 12;
  epoch.sybil_joins = 4;
  epoch.leaves = 12;
  proto::ProtocolConfig cfg;
  const auto horizon =
      dynamics::expected_horizon_rounds(kN0, 6, cfg.schedule);
  const auto schedule = dynamics::derive_schedule(epoch, horizon, seed);
  if (out_sched != nullptr) *out_sched = schedule;
  if (out_n0 != nullptr) *out_n0 = kN0;

  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = policy;
  util::Xoshiro256 churn_rng(util::mix_seed(seed, 0xC002));
  auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  return dynamics::run_counting_midrun(overlay, byz, *strategy, cfg,
                                       seed ^ 0xC, schedule, mid_cfg,
                                       adv::ChurnAdversary::kNone, churn_rng);
}

TEST(MidRunPolicyTest, TreatAsSilentJoinersAreNeverAdmitted) {
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    dynamics::ChurnSchedule sched;
    NodeId n0 = 0;
    const auto out = run_with_schedule(
        proto::MembershipPolicy::kTreatAsSilent, seed, &sched, &n0);
    EXPECT_EQ(out.stats.admitted, 0u);
    EXPECT_EQ(out.stats.verifier_refreshes, 0u);
    // Honest joiners finish the run without an estimate: silent means
    // silent. (Departed-again joiners are kDeparted.)
    for (NodeId v = n0; v < out.run.status.size(); ++v) {
      if (out.run_byz[v]) continue;
      EXPECT_TRUE(out.run.status[v] == proto::NodeStatus::kUndecided ||
                  out.run.status[v] == proto::NodeStatus::kDeparted)
          << "silent joiner " << v << " got status "
          << static_cast<int>(out.run.status[v]);
      EXPECT_EQ(out.run.estimate[v], 0u);
    }
    EXPECT_EQ(out.stats.joins, sched.joins() + sched.sybil_joins());
  }
}

// --- (4) E26: engine↔fastpath bitwise equivalence at NONZERO churn. ---

struct TierCase {
  NodeId n0;
  double rate;  ///< events per run as a fraction of n0 (split 1/2 J, 1/8 S)
  adv::StrategyKind strategy;
  proto::MembershipPolicy policy;
  adv::MidRunScheduleStrategy schedule;
  std::uint64_t seed;
};

class MidRunTierEquivalenceTest : public ::testing::TestWithParam<TierCase> {};

dynamics::MidRunTierComparison compare_tiers(const TierCase& c) {
  dynamics::MutableOverlay overlay(c.n0, 6, 0, c.seed);
  util::Xoshiro256 place_rng(util::mix_seed(c.seed, 0x0B12));
  const std::vector<bool> byz = graph::random_byzantine_mask(
      c.n0, sim::derive_byz_count(c.n0, 0.6), place_rng);

  const auto events = static_cast<std::uint32_t>(c.rate * c.n0);
  dynamics::ChurnEpoch epoch;
  epoch.joins = events / 2;
  epoch.sybil_joins = events / 8;
  epoch.leaves = events - epoch.joins - epoch.sybil_joins;

  proto::ProtocolConfig cfg;
  const auto horizon =
      dynamics::expected_horizon_rounds(c.n0, 6, cfg.schedule);
  const auto schedule = adv::derive_adversarial_schedule(
      epoch, horizon, c.seed, c.schedule, 6, cfg.schedule);
  EXPECT_FALSE(schedule.empty()) << "case exercises zero events";

  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = c.policy;
  mid_cfg.schedule_strategy = c.schedule;
  util::Xoshiro256 churn_rng(util::mix_seed(c.seed, 0xC002));
  return dynamics::compare_midrun_tiers(overlay, byz, c.strategy, cfg,
                                        c.seed ^ 0xC, schedule, mid_cfg,
                                        adv::ChurnAdversary::kNone, churn_rng);
}

TEST_P(MidRunTierEquivalenceTest, EngineMatchesFastpathBitwiseUnderChurn) {
  const auto cmp = compare_tiers(GetParam());
  // Spell out the load-bearing components before the blanket identity so a
  // failure names what diverged.
  EXPECT_EQ(cmp.fastpath.run.status, cmp.engine.run.status);
  EXPECT_EQ(cmp.fastpath.run.estimate, cmp.engine.run.estimate);
  EXPECT_EQ(cmp.fastpath.run.phases_executed, cmp.engine.run.phases_executed);
  EXPECT_EQ(cmp.fastpath.run.flood_rounds, cmp.engine.run.flood_rounds);
  EXPECT_EQ(cmp.fastpath.run.instr.token_messages,
            cmp.engine.run.instr.token_messages);
  EXPECT_EQ(cmp.fastpath.run.instr.verify_messages,
            cmp.engine.run.instr.verify_messages);
  EXPECT_EQ(cmp.fastpath.stats.events_applied, cmp.engine.stats.events_applied);
  EXPECT_EQ(cmp.fastpath.stats.admitted, cmp.engine.stats.admitted);
  EXPECT_EQ(cmp.fastpath.stats.frontier_leaves,
            cmp.engine.stats.frontier_leaves);
  EXPECT_TRUE(cmp.identical);
  // Real churn actually struck mid-run (the case would otherwise collapse
  // into E24's empty-schedule anchor).
  EXPECT_GT(cmp.fastpath.stats.events_applied, 0u);
}

TEST(MidRunTierEquivalenceTest, ComparisonIsDeterministic) {
  const TierCase c{224, 0.06, adv::StrategyKind::kFakeColor,
                   proto::MembershipPolicy::kReadmitNextPhase,
                   adv::MidRunScheduleStrategy::kFrontierLeaves, 5};
  const auto a = compare_tiers(c);
  const auto b = compare_tiers(c);
  EXPECT_TRUE(a.fastpath.run == b.fastpath.run);
  EXPECT_TRUE(a.engine.run == b.engine.run);
  EXPECT_TRUE(a.fastpath.stats == b.fastpath.stats);
  EXPECT_EQ(a.fastpath.run_to_stable, b.fastpath.run_to_stable);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MidRunTierEquivalenceTest,
    ::testing::Values(
        TierCase{192, 0.05, adv::StrategyKind::kHonest,
                 proto::MembershipPolicy::kTreatAsSilent,
                 adv::MidRunScheduleStrategy::kUniform, 7},
        TierCase{192, 0.05, adv::StrategyKind::kHonest,
                 proto::MembershipPolicy::kReadmitNextPhase,
                 adv::MidRunScheduleStrategy::kUniform, 7},
        TierCase{256, 0.08, adv::StrategyKind::kFakeColor,
                 proto::MembershipPolicy::kReadmitNextPhase,
                 adv::MidRunScheduleStrategy::kFrontierLeaves, 11},
        TierCase{256, 0.08, adv::StrategyKind::kFakeColor,
                 proto::MembershipPolicy::kTreatAsSilent,
                 adv::MidRunScheduleStrategy::kFrontierLeaves, 11},
        TierCase{224, 0.06, adv::StrategyKind::kAdaptive,
                 proto::MembershipPolicy::kReadmitNextPhase,
                 adv::MidRunScheduleStrategy::kBoundaryJoinStorm, 23},
        TierCase{224, 0.06, adv::StrategyKind::kSuppress,
                 proto::MembershipPolicy::kReadmitNextPhase,
                 adv::MidRunScheduleStrategy::kBoundaryJoinStorm, 31},
        TierCase{160, 0.12, adv::StrategyKind::kAdaptive,
                 proto::MembershipPolicy::kTreatAsSilent,
                 adv::MidRunScheduleStrategy::kUniform, 43},
        TierCase{160, 0.12, adv::StrategyKind::kFakeColor,
                 proto::MembershipPolicy::kReadmitNextPhase,
                 adv::MidRunScheduleStrategy::kUniform, 43}));

TEST(MidRunPolicyTest, ReadmitNextPhaseAdmitsAndRefreshes) {
  bool any_admitted = false;
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    const auto out = run_with_schedule(
        proto::MembershipPolicy::kReadmitNextPhase, seed, nullptr, nullptr);
    any_admitted = any_admitted || out.stats.admitted > 0;
    if (out.stats.events_applied > 0) {
      EXPECT_GT(out.stats.verifier_refreshes, 0u)
          << "live events applied but the verifier was never rebuilt";
    }
  }
  EXPECT_TRUE(any_admitted) << "no joiner was ever admitted mid-run";
}

}  // namespace
}  // namespace byz
