#include "bench_core/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace byz::bench_core {

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::kArray:
      return elements_.size();
    case Kind::kObject:
      return members_.size();
    default:
      return 0;
  }
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray || index >= elements_.size()) {
    throw std::out_of_range("Json::at: bad array index");
  }
  return elements_[index];
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::logic_error("Json::push_back on non-array");
  elements_.push_back(std::move(value));
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::logic_error("Json::operator[] on non-object");
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null like most writers
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void write_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      write_number(out, num_);
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ", ";
        write_indent(out, indent, depth + 1);
        elements_[i].write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ", ";
        write_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += "\": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull:
      return true;
    case Json::Kind::kBool:
      return a.bool_ == b.bool_;
    case Json::Kind::kNumber:
      return a.num_ == b.num_;
    case Json::Kind::kString:
      return a.str_ == b.str_;
    case Json::Kind::kArray:
      return a.elements_ == b.elements_;
    case Json::Kind::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  Json fail() {
    failed = true;
    return {};
  }

  Json parse_string() {
    // Caller consumed the opening quote.
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail();
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail();
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the bench schema never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail();
      }
    }
    return fail();
  }

  Json parse_value(int depth) {
    if (depth > 64) return fail();
    skip_ws();
    if (pos >= text.size()) return fail();
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      for (;;) {
        if (!consume('"')) return fail();
        Json key = parse_string();
        if (failed) return {};
        if (!consume(':')) return fail();
        obj[key.as_string()] = parse_value(depth + 1);
        if (failed) return {};
        if (consume(',')) continue;
        if (consume('}')) return obj;
        return fail();
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      for (;;) {
        arr.push_back(parse_value(depth + 1));
        if (failed) return {};
        if (consume(',')) continue;
        if (consume(']')) return arr;
        return fail();
      }
    }
    if (c == '"') {
      ++pos;
      return parse_string();
    }
    if (c == 't') return literal("true") ? Json(true) : fail();
    if (c == 'f') return literal("false") ? Json(false) : fail();
    if (c == 'n') return literal("null") ? Json(nullptr) : fail();
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' ||
            text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail();
    double v = 0.0;
    const std::string token(text.substr(start, pos - start));
    if (std::sscanf(token.c_str(), "%lf", &v) != 1) return fail();
    return Json(v);
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Json value = p.parse_value(0);
  if (p.failed) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return value;
}

}  // namespace byz::bench_core
