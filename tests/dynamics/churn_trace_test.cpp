// The churn-trace generator: bitwise determinism, membership bookkeeping,
// and the burst/sybil models.
#include "dynamics/churn_trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace byz::dynamics {
namespace {

TEST(ChurnTrace, GenerationIsDeterministic) {
  ChurnTraceParams params;
  params.n0 = 512;
  params.epochs = 20;
  params.arrival_rate = 9.0;
  params.departure_rate = 7.0;
  params.seed = 1234;
  const auto a = generate_trace(params);
  const auto b = generate_trace(params);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e], b.epochs[e]) << "epoch " << e;
  }

  params.seed = 1235;  // a different stream actually changes the trace
  const auto c = generate_trace(params);
  bool any_diff = false;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    any_diff = any_diff || !(a.epochs[e] == c.epochs[e]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChurnTrace, MembershipBookkeepingBalances) {
  ChurnTraceParams params;
  params.n0 = 256;
  params.epochs = 40;
  params.arrival_rate = 6.0;
  params.departure_rate = 10.0;  // net shrink: exercises the floor
  params.min_n = 128;
  params.seed = 7;
  const auto trace = generate_trace(params);
  graph::NodeId n = params.n0;
  for (const auto& epoch : trace.epochs) {
    const graph::NodeId expected =
        n + epoch.joins + epoch.sybil_joins - epoch.leaves;
    EXPECT_EQ(epoch.n_after, expected);
    EXPECT_GE(epoch.n_after, params.min_n);
    n = epoch.n_after;
  }
}

TEST(ChurnTrace, BurstModelDrainsAtTheBurstEpoch) {
  ChurnTraceParams params;
  params.n0 = 1000;
  params.epochs = 8;
  params.arrival_rate = 2.0;
  params.departure_rate = 2.0;
  params.model = ChurnModel::kBurst;
  params.burst_epoch = 3;
  params.burst_fraction = 0.3;
  params.min_n = 100;
  params.seed = 11;
  const auto trace = generate_trace(params);
  // ~30% of the pre-burst membership leaves at the burst epoch.
  EXPECT_GE(trace.epochs[3].leaves, 250u);
  EXPECT_EQ(trace.epochs[3].sybil_joins, 0u);
  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    if (e == 3) continue;
    EXPECT_LT(trace.epochs[e].leaves, 20u) << "epoch " << e;
  }
}

TEST(ChurnTrace, SybilModelInjectsByzantineJoinsOnlyAtTheBurst) {
  ChurnTraceParams params;
  params.n0 = 1000;
  params.epochs = 8;
  params.arrival_rate = 2.0;
  params.departure_rate = 2.0;
  params.model = ChurnModel::kSybilJoin;
  params.burst_epoch = 2;
  params.burst_fraction = 0.2;
  params.seed = 13;
  const auto trace = generate_trace(params);
  EXPECT_GE(trace.epochs[2].sybil_joins, 150u);
  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    if (e == 2) continue;
    EXPECT_EQ(trace.epochs[e].sybil_joins, 0u) << "epoch " << e;
  }
}

TEST(ChurnTrace, PoissonSanity) {
  util::Xoshiro256 rng(21);
  EXPECT_EQ(poisson(rng, 0.0), 0u);
  EXPECT_EQ(poisson(rng, -3.0), 0u);
  double sum = 0.0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) sum += poisson(rng, 12.0);
  EXPECT_NEAR(sum / kDraws, 12.0, 0.5);

  // Large means take the normal-approximation branch; the mean AND the
  // variance must still track Poisson(lambda).
  double big_sum = 0.0;
  double big_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = poisson(rng, 512.0);
    big_sum += x;
    big_sq += x * x;
  }
  const double big_mean = big_sum / kDraws;
  const double big_var = big_sq / kDraws - big_mean * big_mean;
  EXPECT_NEAR(big_mean, 512.0, 3.0);
  EXPECT_NEAR(big_var, 512.0, 80.0);
}

TEST(ChurnTrace, RejectsTinyBootstrap) {
  ChurnTraceParams params;
  params.n0 = 3;
  EXPECT_THROW((void)generate_trace(params), std::invalid_argument);
}

}  // namespace
}  // namespace byz::dynamics
