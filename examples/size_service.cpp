// Size service: the full production pipeline a P2P deployment would run —
//   Algorithm 2  →  model-aware refinement  →  one median-smoothing round
// — turning "a constant-factor estimate of log n at most honest nodes"
// into "log n ± O(1), agreed almost everywhere", while Byzantine peers
// attack every stage (fake colors during the protocol, inflated values
// during smoothing).
//
// Runs --trials independent deployments through the shared bench_core
// scheduler (seeds split per trial, results identical for any --jobs).
//
//   $ ./size_service [--n=16384] [--d=8] [--delta=0.5] [--seed=11]
//                    [--trials=4] [--jobs=0]
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

namespace {

struct StageStats {
  byz::util::OnlineStats ratio;
  byz::util::OnlineStats spread;
  byz::util::OnlineStats coverage;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace byz;

  util::ArgParser args("size_service", "estimate -> refine -> agree");
  args.add_option("n", "network size", "16384");
  args.add_option("d", "H-degree", "8");
  args.add_option("delta", "Byzantine exponent", "0.5");
  args.add_option("seed", "trial-series seed", "11");
  args.add_option("trials", "independent deployments", "4");
  args.add_option("jobs", "scheduler workers (0 = hardware)", "0");

  graph::NodeId n;
  std::uint32_t d;
  double delta;
  std::uint64_t seed;
  std::uint32_t trials;
  unsigned jobs;
  try {
    if (!args.parse(argc, argv)) return 0;
    n = static_cast<graph::NodeId>(args.integer("n"));
    d = static_cast<std::uint32_t>(args.integer("d"));
    delta = args.real("delta");
    seed = static_cast<std::uint64_t>(args.integer("seed"));
    trials = static_cast<std::uint32_t>(args.integer("trials"));
    jobs = static_cast<unsigned>(args.integer("jobs"));
  } catch (const std::exception& e) {
    std::cerr << "size_service: " << e.what() << "\n\n" << args.help();
    return 2;
  }
  const double truth = std::log2(static_cast<double>(n));

  struct TrialOut {
    proto::Accuracy raw;
    proto::RefinedAccuracy refined;
    proto::RefinedAccuracy smoothed;
  };
  const bench_core::TrialScheduler scheduler(jobs);
  const auto outs = scheduler.map(trials, [&](std::uint64_t t) {
    const auto trial_seed = bench_core::TrialScheduler::trial_seed(seed, t);
    graph::OverlayParams params;
    params.n = n;
    params.d = d;
    params.seed = trial_seed;
    const auto overlay = graph::Overlay::build(params);
    util::Xoshiro256 rng(trial_seed ^ 0xB12);
    const auto byz =
        graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);

    // Stage 1: Byzantine counting (Algorithm 2) under the fake-color attack.
    const auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    const auto run = proto::run_counting(overlay, byz, *strategy, cfg,
                                         trial_seed);
    TrialOut out;
    out.raw = proto::summarize_accuracy(run, n);

    // Stage 2: model-aware refinement l_{i*-2}.
    const auto refined = proto::refine_run(run, d);
    out.refined = proto::summarize_refined(refined, byz, n);

    // Stage 3: median smoothing over direct channels; Byzantine neighbors
    // respond with absurd inflation.
    const auto smoothed = proto::smooth_estimates(overlay, byz, refined,
                                                  proto::EstimateLie::kInflate);
    out.smoothed = proto::summarize_refined(smoothed, byz, n);
    return out;
  });

  StageStats raw, refined, smoothed;
  for (const auto& out : outs) {
    raw.ratio.add(out.raw.mean_ratio);
    raw.coverage.add(100.0 * out.raw.frac_in_band);
    refined.ratio.add(out.refined.mean_ratio);
    refined.spread.add(out.refined.stddev_ratio);
    refined.coverage.add(static_cast<double>(out.refined.with_estimate));
    smoothed.ratio.add(out.smoothed.mean_ratio);
    smoothed.spread.add(out.smoothed.stddev_ratio);
    smoothed.coverage.add(static_cast<double>(out.smoothed.with_estimate));
  }

  util::Table table("Size service pipeline (truth: log2 n = " +
                    util::format_double(truth, 2) + ", B = " +
                    std::to_string(sim::derive_byz_count(n, delta)) + ", " +
                    std::to_string(trials) + " deployments, " +
                    std::to_string(scheduler.jobs()) + " workers)");
  table.columns({"stage", "mean est (log2)", "ratio to truth", "spread (sd)",
                 "coverage"});
  table.row()
      .cell("1. Algorithm 2 phase i*")
      .cell(raw.ratio.mean() * truth, 2)
      .cell(raw.ratio.mean(), 3)
      .cell("-")
      .cell(util::format_double(raw.coverage.mean(), 1) + "% in band");
  table.row()
      .cell("2. refined l_{i*-2}")
      .cell(refined.ratio.mean() * truth, 2)
      .cell(refined.ratio.mean(), 3)
      .cell(refined.spread.mean(), 3)
      .cell(util::format_double(refined.coverage.mean(), 0) + " nodes");
  table.row()
      .cell("3. median-smoothed")
      .cell(smoothed.ratio.mean() * truth, 2)
      .cell(smoothed.ratio.mean(), 3)
      .cell(smoothed.spread.mean(), 3)
      .cell(util::format_double(smoothed.coverage.mean(), 0) + " nodes");
  table.note("Stage 3's adversary: every Byzantine G-neighbor reports a 10^6 "
             "estimate during smoothing; the neighborhood median ignores it. "
             "Means are over " + std::to_string(trials) +
             " seed-split deployments run on the shared trial scheduler.");
  std::cout << table;
  return 0;
}
