// End-to-end pipeline (Algorithm 2 → refinement → smoothing) under every
// adversary strategy and placement: the production path exercised by
// examples/size_service.cpp, asserted as invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/placement.hpp"
#include "graph/bfs.hpp"
#include "graph/categories.hpp"
#include "protocols/fastpath.hpp"
#include "protocols/refine.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n, std::uint32_t d, std::uint64_t seed) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

class PipelinePerStrategy
    : public ::testing::TestWithParam<adv::StrategyKind> {};

TEST_P(PipelinePerStrategy, RefinedAndSmoothedStayBounded) {
  const NodeId n = 2048;
  const std::uint32_t d = 6;  // crash asymptotics regime (DESIGN.md §3.5)
  const Overlay o = sample(n, d, 0xFACE);
  util::Xoshiro256 rng(5);
  const auto byz = graph::random_byzantine_mask(
      n, sim::derive_byz_count(n, 0.7), rng);
  const auto strat = adv::make_strategy(GetParam());
  proto::ProtocolConfig cfg;
  const auto run = proto::run_counting(o, byz, *strat, cfg, 0xBEEF);

  const auto refined = proto::refine_run(run, d);
  const auto racc = proto::summarize_refined(refined, byz, n);
  // Whatever the attack, refined ratios of deciders stay within a loose
  // constant band (no blow-ups, no zeros from decided nodes).
  ASSERT_GT(racc.with_estimate, 0u);
  EXPECT_GT(racc.min_ratio, 0.1) << adv::to_string(GetParam());
  EXPECT_LT(racc.max_ratio, 3.0) << adv::to_string(GetParam());

  // Smoothing under the worst estimate lie cannot push the median outside
  // a slightly wider band.
  const auto smoothed =
      proto::smooth_estimates(o, byz, refined, proto::EstimateLie::kInflate);
  const auto sacc = proto::summarize_refined(smoothed, byz, n);
  EXPECT_LT(sacc.max_ratio, 3.5) << adv::to_string(GetParam());
  // Smoothing reduces (or maintains) the spread.
  EXPECT_LE(sacc.stddev_ratio, racc.stddev_ratio + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PipelinePerStrategy,
    ::testing::ValuesIn(adv::all_strategies()),
    [](const ::testing::TestParamInfo<adv::StrategyKind>& info) {
      std::string name = adv::to_string(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

class PipelinePerPlacement : public ::testing::TestWithParam<adv::Placement> {};

TEST_P(PipelinePerPlacement, DamageIsLocalizedToTheChain) {
  // Even adversarial placement only stalls nodes near the Byzantine set;
  // far nodes must still decide with sane refined estimates.
  const NodeId n = 2048;
  const Overlay o = sample(n, 8, 0xFEED);
  util::Xoshiro256 rng(7);
  const auto byz = adv::place_byzantine(o, 45, GetParam(), rng);
  const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
  proto::ProtocolConfig cfg;
  const auto run = proto::run_counting(o, byz, *strat, cfg, 0xF00D);

  // Honest nodes at H-distance > k+1 from every Byzantine node always
  // decide (stalling requires receiving a verified late injection, which
  // only neighborhoods of usable chains can).
  std::vector<NodeId> byz_nodes;
  for (NodeId v = 0; v < n; ++v) {
    if (byz[v]) byz_nodes.push_back(v);
  }
  const auto dist = graph::multi_source_distances(o.h_simple(), byz_nodes);
  for (NodeId v = 0; v < n; ++v) {
    if (!byz[v] && dist[v] > o.k() + 1) {
      EXPECT_NE(static_cast<int>(run.status[v]),
                static_cast<int>(proto::NodeStatus::kUndecided))
          << "far node " << v << " stalled under "
          << adv::to_string(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Placements, PipelinePerPlacement,
    ::testing::ValuesIn(adv::all_placements()),
    [](const ::testing::TestParamInfo<adv::Placement>& info) {
      return std::string(adv::to_string(info.param));
    });

TEST(Pipeline, AgreementImprovesMonotonically) {
  // The three stages must be progressively tighter on a clean network.
  const NodeId n = 4096;
  const Overlay o = sample(n, 8, 0xABBA);
  const std::vector<bool> byz(n, false);
  const auto run = proto::run_basic_counting(o, 0xD00D);
  const auto raw = proto::summarize_accuracy(run, n);
  const auto refined = proto::refine_run(run, 8);
  const auto racc = proto::summarize_refined(refined, byz, n);
  const auto smoothed =
      proto::smooth_estimates(o, byz, refined, proto::EstimateLie::kHonest);
  const auto sacc = proto::summarize_refined(smoothed, byz, n);
  // Stage 2 closer to 1.0 than stage 1's raw phase ratio.
  EXPECT_LT(std::abs(racc.mean_ratio - 1.0), std::abs(raw.mean_ratio - 1.0));
  // Stage 3 at most stage 2's spread.
  EXPECT_LE(sacc.stddev_ratio, racc.stddev_ratio);
}

}  // namespace
}  // namespace byz
