// The load-bearing test of the two-tier design: the message-level engine
// and the array fast path must produce IDENTICAL per-node outcomes (status,
// estimate) and identical logical message counts on the same seed, for
// every adversary strategy.
#include <gtest/gtest.h>

#include "adversary/strategies.hpp"
#include "graph/categories.hpp"
#include "protocols/fastpath.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace byz {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct Case {
  NodeId n;
  std::uint32_t d;
  std::uint64_t seed;
  adv::StrategyKind strategy;
  NodeId byz_count;
};

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, EngineMatchesFastPath) {
  const Case c = GetParam();
  OverlayParams p;
  p.n = c.n;
  p.d = c.d;
  p.seed = c.seed;
  const Overlay overlay = Overlay::build(p);
  util::Xoshiro256 rng(c.seed ^ 0xB12);
  const auto byz = graph::random_byzantine_mask(c.n, c.byz_count, rng);

  proto::ProtocolConfig cfg;
  const std::uint64_t color_seed = c.seed ^ 0xC01;

  auto s1 = adv::make_strategy(c.strategy);
  const auto fast = proto::run_counting(overlay, byz, *s1, cfg, color_seed);

  auto s2 = adv::make_strategy(c.strategy);
  sim::Engine engine(overlay, byz, *s2, cfg, color_seed);
  const auto ref = engine.run();

  ASSERT_EQ(fast.status.size(), ref.status.size());
  for (NodeId v = 0; v < c.n; ++v) {
    EXPECT_EQ(static_cast<int>(fast.status[v]), static_cast<int>(ref.status[v]))
        << "status mismatch at v=" << v;
    EXPECT_EQ(fast.estimate[v], ref.estimate[v]) << "estimate mismatch at v=" << v;
  }
  EXPECT_EQ(fast.phases_executed, ref.phases_executed);
  EXPECT_EQ(fast.flood_rounds, ref.flood_rounds);
  EXPECT_EQ(fast.instr.token_messages, ref.instr.token_messages);
  EXPECT_EQ(fast.instr.setup_messages, ref.instr.setup_messages);
  EXPECT_EQ(fast.instr.verify_messages, ref.instr.verify_messages);
  EXPECT_EQ(fast.instr.injections_attempted, ref.instr.injections_attempted);
  EXPECT_EQ(fast.instr.injections_accepted, ref.instr.injections_accepted);
  EXPECT_EQ(fast.instr.injections_caught, ref.instr.injections_caught);
  EXPECT_EQ(fast.instr.crashes, ref.instr.crashes);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, EquivalenceTest,
    ::testing::Values(
        Case{200, 6, 1, adv::StrategyKind::kHonest, 0},
        Case{200, 6, 2, adv::StrategyKind::kHonest, 8},
        Case{200, 6, 3, adv::StrategyKind::kFakeColor, 8},
        Case{200, 6, 4, adv::StrategyKind::kSuppress, 8},
        Case{200, 6, 5, adv::StrategyKind::kTopologyLiar, 8},
        Case{200, 6, 6, adv::StrategyKind::kCrashMaximizer, 8},
        Case{200, 6, 7, adv::StrategyKind::kAdaptive, 8},
        Case{333, 8, 8, adv::StrategyKind::kFakeColor, 12},
        Case{128, 4, 9, adv::StrategyKind::kAdaptive, 6},
        Case{512, 6, 10, adv::StrategyKind::kFakeColor, 20}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string name = std::string(adv::to_string(c.strategy)) + "_n" +
                         std::to_string(c.n) + "_d" + std::to_string(c.d) +
                         "_s" + std::to_string(c.seed);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace byz
