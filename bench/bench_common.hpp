// Shared plumbing for the registered byzbench scenarios. Each
// bench_eXX.cpp registers one ScenarioSpec against the bench_core
// registry; the byzbench binary links them all and drives them through
// the orchestrator (shared scheduler + overlay cache + JSON emitters).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "byzcount.hpp"

namespace byz::bench {

using bench_core::GridAxis;
using bench_core::Json;
using bench_core::RunContext;
using bench_core::ScenarioSpec;

/// Byzantine placement for a trial.
inline std::vector<bool> place_byz(graph::NodeId n, double delta,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix_seed(seed, 0x0B12));
  return graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);
}

/// log2 helper.
inline double lg(double x) { return std::log2(x); }

/// Grid axis covering the pow2 sweep [2^lo, 2^hi] (declarative view).
inline GridAxis pow2_axis(std::uint32_t lo, std::uint32_t hi) {
  return {"n", {"2^" + std::to_string(lo) + "..2^" + std::to_string(hi)}};
}

}  // namespace byz::bench
