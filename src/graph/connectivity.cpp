#include "graph/connectivity.hpp"

#include <algorithm>
#include <stdexcept>

namespace byz::graph {

std::uint32_t Components::largest() const {
  if (sizes.empty()) throw std::logic_error("Components::largest: empty graph");
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < sizes.size(); ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  return best;
}

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components comps;
  comps.id.assign(n, static_cast<std::uint32_t>(-1));
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (comps.id[start] != static_cast<std::uint32_t>(-1)) continue;
    const auto cid = static_cast<std::uint32_t>(comps.sizes.size());
    comps.sizes.push_back(0);
    stack.push_back(start);
    comps.id[start] = cid;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      ++comps.sizes[cid];
      for (const NodeId w : g.neighbors(v)) {
        if (comps.id[w] == static_cast<std::uint32_t>(-1)) {
          comps.id[w] = cid;
          stack.push_back(w);
        }
      }
    }
  }
  return comps;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  return connected_components(g).count() == 1;
}

Graph induced_subgraph(const Graph& g, const std::vector<bool>& keep,
                       std::vector<NodeId>* old_to_new,
                       std::vector<NodeId>* new_to_old) {
  const NodeId n = g.num_nodes();
  if (keep.size() != n) {
    throw std::invalid_argument("induced_subgraph: mask size mismatch");
  }
  std::vector<NodeId> map(n, kInvalidNode);
  std::vector<NodeId> inverse;
  for (NodeId v = 0; v < n; ++v) {
    if (keep[v]) {
      map[v] = static_cast<NodeId>(inverse.size());
      inverse.push_back(v);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    if (!keep[v]) continue;
    for (const NodeId w : g.neighbors(v)) {
      if (v < w && keep[w]) edges.emplace_back(map[v], map[w]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  if (new_to_old != nullptr) *new_to_old = std::move(inverse);
  return Graph::from_edges(static_cast<NodeId>(
                               std::count(keep.begin(), keep.end(), true)),
                           edges, /*dedup=*/false);
}

std::vector<bool> largest_component_mask(const Graph& g,
                                         const std::vector<bool>& keep) {
  const NodeId n = g.num_nodes();
  if (keep.size() != n) {
    throw std::invalid_argument("largest_component_mask: mask size mismatch");
  }
  std::vector<std::uint32_t> id(n, static_cast<std::uint32_t>(-1));
  std::vector<std::uint64_t> sizes;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (!keep[start] || id[start] != static_cast<std::uint32_t>(-1)) continue;
    const auto cid = static_cast<std::uint32_t>(sizes.size());
    sizes.push_back(0);
    stack.push_back(start);
    id[start] = cid;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      ++sizes[cid];
      for (const NodeId w : g.neighbors(v)) {
        if (keep[w] && id[w] == static_cast<std::uint32_t>(-1)) {
          id[w] = cid;
          stack.push_back(w);
        }
      }
    }
  }
  std::vector<bool> mask(n, false);
  if (sizes.empty()) return mask;
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < sizes.size(); ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  for (NodeId v = 0; v < n; ++v) mask[v] = (id[v] == best);
  return mask;
}

}  // namespace byz::graph
