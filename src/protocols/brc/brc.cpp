#include "protocols/brc/brc.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/color.hpp"
#include "sim/world.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace byz::proto {

namespace {

using graph::NodeId;

/// Commitment-table stream tag: BRC draws from a DIFFERENT slice of the
/// coin table than Algorithm 2 on the same color_seed, so a cross-backend
/// comparison at one seed runs two statistically independent experiments —
/// their agreement (E32) is evidence, not shared randomness.
constexpr std::uint64_t kBrcSeedStream = 0xB5C0;

/// Committed color of node v for global repetition index `rep_idx`.
Color committed_color(std::uint64_t brc_seed, NodeId v,
                      std::uint32_t rep_idx) noexcept {
  return color_at(brc_seed, v, rep_idx);
}

std::uint32_t force_odd(std::uint32_t reps) {
  return reps % 2 == 0 ? reps + 1 : reps;
}

}  // namespace

std::uint32_t resolve_brc_max_batches(const graph::Overlay& overlay,
                                      const BrcConfig& cfg) {
  if (cfg.max_batches != 0) return cfg.max_batches;
  // Depth 2^m must cover the overlay's diameter estimate
  // ceil(log2 n / log2(d-1)) + 2 before the medians can saturate; three
  // further doublings absorb suppression-thinned routing and the
  // stabilization confirmation batch.
  const double n = overlay.num_nodes();
  const double d = overlay.params().d;
  const double diam =
      std::ceil(std::log2(std::max(2.0, n)) / std::log2(std::max(2.0, d - 1.0))) +
      2.0;
  const auto cover =
      static_cast<std::uint32_t>(std::ceil(std::log2(std::max(2.0, diam))));
  return cover + 3;
}

RunResult run_brc_counting(const graph::Overlay& overlay,
                           const std::vector<bool>& byz_mask,
                           adv::Strategy& strategy, const BrcConfig& cfg,
                           std::uint64_t color_seed,
                           const RunControls& controls) {
  const NodeId n = overlay.num_nodes();
  if (controls.lazy_subphases) {
    throw std::invalid_argument(
        "run_brc_counting: lazy_subphases is an Algorithm-2 tier (BRC has "
        "no fired-flag short-circuit; every repetition feeds the medians)");
  }
  if (controls.start_phase != 1) {
    throw std::invalid_argument(
        "run_brc_counting: start_phase skip is the Algorithm-2 ε-warm tier; "
        "BRC batches carry cross-batch median state and cannot be skipped");
  }
  MidRunHooks* const midrun = controls.midrun;
  if (midrun != nullptr && controls.verifier != nullptr) {
    throw std::invalid_argument(
        "run_brc_counting: midrun hooks are incompatible with an external "
        "verifier (begin_phase owns the verifier)");
  }
  const NodeId nb = midrun ? midrun->node_bound() : n;
  if (nb < n || byz_mask.size() != nb) {
    throw std::invalid_argument("run_brc_counting: mask size mismatch");
  }

  static const obs::Counter obs_batches("brc.batches");
  static const obs::Counter obs_reps("brc.repetitions");
  static const obs::Counter obs_forged("brc.forged_injections_dropped");
  obs::Span run_span("count.run");
  run_span.arg("n", n).arg("backend", "brc");

  RunResult result;
  result.status.assign(nb, NodeStatus::kUndecided);
  result.estimate.assign(nb, 0);

  const sim::World world = sim::World::make(overlay, byz_mask, color_seed);
  for (const NodeId b : world.byz_nodes) {
    result.status[b] = NodeStatus::kByzantine;
  }
  for (NodeId v = n; v < nb; ++v) {
    if (byz_mask[v]) result.status[v] = NodeStatus::kByzantine;
  }

  // No adjacency exchange, no crash rule: commitment recomputation replaces
  // witness interrogation, so there is no setup stage an adversary can lie
  // through and honest nodes are never kCrashed.
  const std::vector<bool> crashed(nb, false);

  // The kernel still wants a Verifier; BRC's is permissive (enabled=false —
  // zero interrogation traffic) because the commitment filter below runs
  // BEFORE injection delivery. Under mid-run churn begin_phase owns it (the
  // caller must hand the feed a disabled-verification config).
  const Verifier* verifier = controls.verifier;
  std::optional<Verifier> owned_verifier;
  const FloodExec flood_exec = resolve_flood_exec(controls.flood);
  if (verifier == nullptr && midrun == nullptr) {
    VerificationConfig vcfg;
    vcfg.enabled = false;
    owned_verifier.emplace(
        overlay, byz_mask, vcfg,
        flood_exec.mode == FloodMode::kParallel ? flood_exec.threads : 1);
    verifier = &*owned_verifier;
  }

  const std::uint64_t brc_seed = util::mix_seed(color_seed, kBrcSeedStream);
  const std::uint32_t reps = force_odd(std::max(3u, cfg.reps_per_batch));
  const std::uint32_t max_batches = resolve_brc_max_batches(overlay, cfg);
  // Byzantine nodes participate with their committed colors unless the
  // strategy withholds (kSuppress); a fake-color strategy still relays, and
  // its forged injections are dropped by the commitment filter.
  const bool byz_participates =
      strategy.forwards_floods() || strategy.generates_honestly();

  std::vector<bool> active(nb, false);
  std::uint64_t active_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!byz_mask[v]) {
      active[v] = true;
      ++active_count;
    }
  }
  std::vector<std::uint8_t> participates;
  std::vector<NodeId> admitted;
  if (midrun != nullptr) {
    participates.assign(nb, 0);
    std::fill(participates.begin(), participates.begin() + n, 1);
  }

  FloodWorkspace ws;
  std::vector<Color> gen(nb, 0);
  std::vector<Injection> injections;
  std::vector<Injection> conformant;
  std::vector<Color> rep_max(static_cast<std::size_t>(nb) * reps, 0);
  std::vector<Color> med(nb, 0);
  std::vector<Color> prev_med(nb, 0);
  std::vector<std::uint8_t> prev_valid(nb, 0);
  std::vector<Color> row(reps);
  std::uint64_t global_round = 0;

  obs::RunDigester* const dg = controls.digester;
  std::uint32_t batch = 0;
  while (batch < max_batches && active_count > 0) {
    ++batch;
    const std::uint32_t depth = 1u << batch;  // T_m = 2^m
    obs::Span batch_span("count.phase");
    batch_span.arg("phase", batch).arg("depth", depth).arg("active_in",
                                                           active_count);
    obs_batches.add(1);
    if (midrun != nullptr) {
      verifier = admit_at_phase_boundary(*midrun, batch, byz_mask, crashed,
                                         result.status, participates, active,
                                         active_count, admitted);
    }
    if (dg != nullptr) {
      dg->begin_phase(batch);
      dg->note(obs::FlightEventKind::kPhaseBegin, active_count,
               admitted.size());
      digest_phase_state(*dg, *verifier, result.status, result.estimate, nb);
    }
    result.subphases_scheduled += reps;

    for (std::uint32_t rep = 1; rep <= reps; ++rep) {
      obs::Span sub_span("count.subphase");
      sub_span.arg("phase", batch).arg("j", rep);
      obs_reps.add(1);
      const std::uint32_t s = (batch - 1) * reps + (rep - 1);

      // Every member floods its committed color every repetition — decided
      // nodes keep generating (they are still members; stragglers and
      // mid-run joiners need the full color mass to land in band).
      Color member_max = 0;
      for (NodeId v = 0; v < nb; ++v) {
        const bool member =
            (midrun == nullptr || participates[v] != 0) &&
            result.status[v] != NodeStatus::kDeparted &&
            result.status[v] != NodeStatus::kCrashed;
        if (!member) {
          gen[v] = 0;
          continue;
        }
        const Color c = committed_color(brc_seed, v, s);
        // The commitment of EVERY member (including a withholding Byzantine
        // node) caps what an adversary can claim: colluders may reveal a
        // withheld commitment, but cannot exceed the member maximum.
        member_max = std::max(member_max, c);
        gen[v] = (!byz_mask[v] || byz_participates) ? c : 0;
      }

      // Commitment filter: an injected value is deliverable only if some
      // certified member's committed color reaches it — anything larger
      // matches no commitment and is dropped at the first honest hop.
      // Inflation past the true member maximum is impossible by
      // construction; what passes the filter only pushes receivers TOWARD
      // the global maximum they must converge to anyway.
      injections.clear();
      strategy.plan_subphase(world, {depth, rep, s}, injections);
      conformant.clear();
      for (const Injection& inj : injections) {
        if (inj.value <= member_max) {
          conformant.push_back(inj);
        } else {
          ++result.instr.injections_attempted;
          ++result.instr.injections_caught;
          obs_forged.add(1);
        }
      }

      FloodParams params;
      params.steps = depth;
      params.byz_forward = strategy.forwards_floods();
      params.exec = flood_exec;
      if (midrun != nullptr) {
        params.live = midrun;
        params.clock = {batch, rep, 1, global_round};
      }
      if (dg != nullptr) {
        dg->begin_subphase(rep);
        params.digest = dg;
      }
      run_flood_subphase(overlay, byz_mask, crashed, *verifier, params, gen,
                         conformant, ws, result.instr);
      global_round += depth;
      ++result.subphases_executed;

      for (NodeId v = 0; v < nb; ++v) {
        rep_max[static_cast<std::size_t>(v) * reps + (rep - 1)] = ws.known[v];
      }
      if (dg != nullptr) {
        for (NodeId v = 0; v < nb; ++v) {
          dg->fold_subphase(obs::digest_state_term(v, ws.known[v]));
        }
        dg->close_subphase();
      }
    }

    // Mid-run churn: reconcile departures before the decide sweep reads
    // this batch's medians.
    if (midrun != nullptr) {
      sweep_departed(*midrun, active, active_count, result, dg);
    }

    // Per-node batch median, then the saturation test: the median is exact
    // (odd rep count), so "stopped growing" is an integer comparison and
    // the whole run is deterministic bit for bit.
    std::uint64_t decided_now = 0;
    for (NodeId v = 0; v < nb; ++v) {
      if (!active[v]) continue;
      const Color* vals = rep_max.data() + static_cast<std::size_t>(v) * reps;
      std::copy(vals, vals + reps, row.begin());
      std::nth_element(row.begin(), row.begin() + reps / 2, row.end());
      med[v] = row[reps / 2];
      const bool stable =
          batch >= cfg.min_decide_batch && prev_valid[v] != 0 &&
          (med[v] >= prev_med[v] ? med[v] - prev_med[v]
                                 : prev_med[v] - med[v]) <= cfg.stability_slack;
      if (stable) {
        active[v] = false;
        --active_count;
        result.status[v] = NodeStatus::kDecided;
        result.estimate[v] = med[v];
        ++decided_now;
        if (dg != nullptr) dg->fold_phase(obs::digest_state_term(v, med[v]));
      } else {
        prev_med[v] = med[v];
        prev_valid[v] = 1;
      }
    }
    if (dg != nullptr) {
      dg->fold_phase(obs::mix2(decided_now, active_count));
      dg->close_phase();
    }
    BYZ_TRACE << "brc batch " << batch << " (depth " << depth << "): " << reps
              << " repetitions, " << decided_now << " nodes decided, "
              << active_count << " still active";
    batch_span.arg("decided", decided_now).arg("active_out", active_count);
  }
  result.phases_executed = batch;
  result.flood_rounds = result.instr.flood_rounds;
  if (dg != nullptr) {
    fold_run_outcome(*dg, result, nb);
  }
  run_span.arg("batches", batch).arg("rounds", result.instr.flood_rounds);
  return result;
}

namespace {

class BrcEstimator final : public Estimator {
 public:
  explicit BrcEstimator(BrcConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string_view name() const override { return "brc"; }

  [[nodiscard]] EstimatorBound bound(
      const graph::Overlay& overlay) const override {
    // The decided median sits at the maximum of ~n geometric colors,
    // median log2 n + log2 e·ln 2 ≈ log2 n + 1.5, so the est/log2 n ratio
    // concentrates at 1 + Θ(1/log n): the additive Gumbel fluctuation and
    // the pre-coverage saturation slack shrink RELATIVE to log n as n
    // grows. Suppression only thins the maximum by O(|Byz|/n). The ε
    // outlier budget covers the information-starved tail: at d=4 a
    // Byzantine cut can shrink a node's effective ball enough that its
    // medians stabilize early on a small-ball maximum (measured worst case
    // ~3.3% of honest nodes at n=32768, d=4 under suppression — ε=0.08
    // keeps better than 2x margin), plus phase-cap stragglers and mid-run
    // joiners.
    const double log_n =
        std::log2(std::max(4.0, static_cast<double>(overlay.num_nodes())));
    EstimatorBound b;
    b.lo = std::max(0.50, 1.0 - 3.0 / log_n);
    b.hi = std::min(2.20, 1.0 + 4.5 / log_n);
    b.eps = 0.08;
    return b;
  }

  [[nodiscard]] bool supports(EstimatorTier tier) const override {
    switch (tier) {
      case EstimatorTier::kColdRun:
      case EstimatorTier::kMidRunChurn:
        return true;
      case EstimatorTier::kLazySubphases:
      case EstimatorTier::kWarmStart:
      case EstimatorTier::kEpsWarm:
      case EstimatorTier::kEngineOracle:
        return false;
    }
    return false;
  }

  [[nodiscard]] RunResult run(const graph::Overlay& overlay,
                              const std::vector<bool>& byz_mask,
                              adv::Strategy& strategy,
                              std::uint64_t color_seed,
                              const RunControls& controls) const override {
    return run_brc_counting(overlay, byz_mask, strategy, cfg_, color_seed,
                            controls);
  }

 private:
  BrcConfig cfg_;
};

}  // namespace

std::unique_ptr<Estimator> make_brc_estimator(const ProtocolConfig& cfg) {
  BrcConfig brc;
  brc.max_batches = cfg.max_phase;  // 0 = auto, same convention
  return std::make_unique<BrcEstimator>(brc);
}

}  // namespace byz::proto
