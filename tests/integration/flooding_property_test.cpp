// Parameterized property sweep for the flood kernel: on every sampled
// world, one subphase of max-flooding must reproduce ground-truth BFS ball
// maxima, and the k_t bookkeeping must match a brute-force reference that
// recomputes per-round boundary maxima from distances.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.hpp"
#include "protocols/flooding.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct Param {
  NodeId n;
  std::uint32_t d;
  std::uint32_t steps;
  std::uint64_t seed;
};

class FloodProperty : public ::testing::TestWithParam<Param> {};

TEST_P(FloodProperty, MatchesBruteForceBallMaxima) {
  const Param p = GetParam();
  OverlayParams op;
  op.n = p.n;
  op.d = p.d;
  op.seed = p.seed;
  const Overlay overlay = Overlay::build(op);
  const std::vector<bool> byz(p.n, false);
  const std::vector<bool> crashed(p.n, false);
  const Verifier verifier(overlay, byz, {});

  std::vector<Color> gen(p.n);
  util::Xoshiro256 rng(p.seed ^ 0xF10);
  for (auto& c : gen) c = util::geometric_color(rng);

  FloodWorkspace ws;
  sim::Instrumentation instr;
  FloodParams params;
  params.steps = p.steps;
  run_flood_subphase(overlay, byz, crashed, verifier, params, gen, {}, ws,
                     instr);

  // Brute force from a sample of nodes: known == max over B(v, steps);
  // last_step matches the "fresh boundary max" semantics: the max color at
  // distance exactly `steps` if it exceeds everything nearer AND whatever
  // re-broadcasts reach v in the final round.
  for (NodeId v = 0; v < p.n; v += std::max<NodeId>(1, p.n / 64)) {
    const auto dist = graph::bfs_distances(overlay.h_simple(), v, p.steps);
    Color ball_max = gen[v];
    Color interior_max = 0;  // strictly inside (dist < steps), excluding v
    Color boundary_max = 0;
    for (NodeId w = 0; w < p.n; ++w) {
      if (w == v || dist[w] == graph::kUnreachable) continue;
      if (dist[w] <= p.steps) ball_max = std::max(ball_max, gen[w]);
      if (dist[w] < p.steps) interior_max = std::max(interior_max, gen[w]);
      if (dist[w] == p.steps) boundary_max = std::max(boundary_max, gen[w]);
    }
    EXPECT_EQ(ws.known[v], ball_max) << "v=" << v;
    // The firing predicate's ingredients: if the boundary strictly exceeds
    // the interior (and own color), the last step must deliver it fresh.
    if (boundary_max > std::max(interior_max, gen[v])) {
      EXPECT_EQ(ws.last_step[v], boundary_max) << "v=" << v;
      EXPECT_GT(ws.last_step[v], ws.best_before[v]) << "v=" << v;
    }
  }
}

TEST_P(FloodProperty, MessageCountBoundedByForwardOnce) {
  const Param p = GetParam();
  OverlayParams op;
  op.n = p.n;
  op.d = p.d;
  op.seed = p.seed;
  const Overlay overlay = Overlay::build(op);
  const std::vector<bool> byz(p.n, false);
  const std::vector<bool> crashed(p.n, false);
  const Verifier verifier(overlay, byz, {});
  std::vector<Color> gen(p.n);
  util::Xoshiro256 rng(p.seed ^ 0xF11);
  for (auto& c : gen) c = util::geometric_color(rng);
  FloodWorkspace ws;
  sim::Instrumentation instr;
  FloodParams params;
  params.steps = p.steps;
  run_flood_subphase(overlay, byz, crashed, verifier, params, gen, {}, ws,
                     instr);
  // Forward-once: every node broadcasts at most once per improvement, and
  // improvements are bounded by steps; a generous uniform bound is
  // (steps) * 2|E|, and a tight one for step 1 is exactly 2|E|.
  EXPECT_LE(instr.token_messages,
            static_cast<std::uint64_t>(p.steps) *
                overlay.h_simple().num_slots());
  EXPECT_GE(instr.token_messages, overlay.h_simple().num_slots());
  EXPECT_EQ(instr.flood_rounds, p.steps);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, FloodProperty,
    ::testing::Values(Param{128, 4, 2, 1}, Param{256, 6, 3, 2},
                      Param{512, 8, 2, 3}, Param{512, 6, 4, 4},
                      Param{1024, 8, 3, 5}, Param{300, 6, 5, 6},
                      Param{2048, 6, 3, 7}, Param{777, 8, 4, 8}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.d) + "_t" +
             std::to_string(info.param.steps) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace byz::proto
