// Churn traces: the per-epoch join/leave workload an evolving deployment
// sees, generated up front so every component (epoch driver, scenarios,
// tests) replays the identical sequence. Generation is a pure function of
// the params (SplitMix64-derived stream), so traces are bitwise
// reproducible for any --jobs value; WHICH node departs and WHERE a joiner
// splices are replay-time decisions (adv::ChurnAdversary), keeping the
// trace itself topology-free.
//
// Trace format (also the BENCH manifest vocabulary): one ChurnEpoch per
// epoch with
//   joins         honest arrivals (Poisson(arrival_rate))
//   sybil_joins   Byzantine arrivals (kSybilJoin burst epochs only)
//   leaves        departures (Poisson(departure_rate), plus the kBurst
//                 mass departure at burst_epoch), clamped so membership
//                 never drops below max(min_n, 4)
//   n_after       membership after applying joins first, then leaves
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace byz::dynamics {

enum class ChurnModel : std::uint8_t {
  kSteady,     ///< stationary Poisson arrivals and departures
  kBurst,      ///< steady plus a mass departure at burst_epoch
  kSybilJoin,  ///< steady plus a Byzantine join burst at burst_epoch
};

[[nodiscard]] const char* to_string(ChurnModel model);
[[nodiscard]] std::vector<ChurnModel> all_churn_models();

struct ChurnTraceParams {
  graph::NodeId n0 = 1024;        ///< bootstrap membership
  std::uint32_t epochs = 12;
  double arrival_rate = 8.0;      ///< mean honest joins per epoch
  double departure_rate = 8.0;    ///< mean departures per epoch
  ChurnModel model = ChurnModel::kSteady;
  std::uint32_t burst_epoch = 4;  ///< epoch index of the burst (0-based)
  double burst_fraction = 0.25;   ///< of current n: departures / sybil joins
  graph::NodeId min_n = 64;       ///< membership floor (>= 4 enforced)
  std::uint64_t seed = 1;         ///< trace stream seed
};

struct ChurnEpoch {
  std::uint32_t joins = 0;
  std::uint32_t sybil_joins = 0;
  std::uint32_t leaves = 0;
  graph::NodeId n_after = 0;

  bool operator==(const ChurnEpoch&) const = default;
};

struct ChurnTrace {
  ChurnTraceParams params;
  std::vector<ChurnEpoch> epochs;
};

/// Poisson variate: Knuth's product method for mean <= 64, the N(mean,
/// mean) normal approximation above (so large-network churn rates neither
/// underflow nor cost ~mean uniforms per draw). mean <= 0 returns 0.
[[nodiscard]] std::uint32_t poisson(util::Xoshiro256& rng, double mean);

/// Generates the trace; deterministic in params alone.
[[nodiscard]] ChurnTrace generate_trace(const ChurnTraceParams& params);

}  // namespace byz::dynamics
