// The incremental tier's equivalence suite: on EVERY epoch snapshot of a
// churn trace, (1) the incremental snapshot must be bitwise identical to
// the full rebuild (verify_snapshots), (2) the warm-started protocol
// decisions must equal the cold run's exactly (verify_warm — run_churn
// throws on the first divergence), and (3) the message-level Engine must
// still agree with the cold fast path (run_engine). One config exercises
// all three tiers at once, across churn models and adversary strategies.
#include <gtest/gtest.h>

#include "dynamics/epoch_driver.hpp"

namespace byz {
namespace {

struct Case {
  dynamics::ChurnModel model;
  adv::StrategyKind strategy;
  adv::ChurnAdversary adversary;
  std::uint64_t seed;
};

class WarmEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(WarmEquivalenceTest, WarmColdAndEngineAgreeOnEverySnapshot) {
  const Case c = GetParam();
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 160;
  cfg.trace.epochs = 3;
  cfg.trace.arrival_rate = 6.0;
  cfg.trace.departure_rate = 6.0;
  cfg.trace.model = c.model;
  cfg.trace.burst_epoch = 1;
  cfg.trace.burst_fraction = 0.2;
  cfg.trace.min_n = 64;
  cfg.trace.seed = c.seed;
  cfg.d = 6;
  cfg.delta = 0.7;
  cfg.strategy = c.strategy;
  cfg.churn_adversary = c.adversary;
  cfg.seed = c.seed;
  cfg.run_engine = true;
  cfg.incremental.incremental = true;
  cfg.incremental.verify_snapshots = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;
  // Let the burst models through the warm path so divergence would show.
  cfg.incremental.warm.max_drift = 0.5;

  const auto result = dynamics::run_churn(cfg);  // throws on divergence
  ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
  bool any_warm = false;
  for (std::uint32_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_TRUE(result.epochs[e].engine_match)
        << "engine/fastpath divergence at epoch " << e;
    EXPECT_GT(result.epochs[e].messages_cold, 0u);
    EXPECT_LE(result.epochs[e].messages, result.epochs[e].messages_cold);
    any_warm = any_warm || result.epochs[e].warm_used;
  }
  EXPECT_TRUE(any_warm) << "warm path never engaged";
}

INSTANTIATE_TEST_SUITE_P(
    ChurnModels, WarmEquivalenceTest,
    ::testing::Values(
        Case{dynamics::ChurnModel::kSteady, adv::StrategyKind::kHonest,
             adv::ChurnAdversary::kNone, 1},
        Case{dynamics::ChurnModel::kSteady, adv::StrategyKind::kFakeColor,
             adv::ChurnAdversary::kNone, 2},
        Case{dynamics::ChurnModel::kBurst, adv::StrategyKind::kAdaptive,
             adv::ChurnAdversary::kTargetedDeparture, 3},
        Case{dynamics::ChurnModel::kSybilJoin, adv::StrategyKind::kFakeColor,
             adv::ChurnAdversary::kSybilBurst, 4},
        Case{dynamics::ChurnModel::kSybilJoin,
             adv::StrategyKind::kCrashMaximizer, adv::ChurnAdversary::kEclipse,
             5}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string name = std::string(dynamics::to_string(c.model)) + "_" +
                         adv::to_string(c.strategy) + "_" +
                         adv::to_string(c.adversary) + "_s" +
                         std::to_string(c.seed);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace byz
