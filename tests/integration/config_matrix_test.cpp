// Configuration-matrix sweep: the engine ↔ fast-path equivalence and the
// basic protocol invariants must hold under EVERY supported configuration,
// not just the defaults — both α_i schedule variants, both subphase
// multipliers, both verification chain models, and the ablation switches.
#include <gtest/gtest.h>

#include "adversary/strategies.hpp"
#include "graph/categories.hpp"
#include "protocols/fastpath.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace byz {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct ConfigCase {
  proto::SchedulePolicy policy;
  bool times_i;
  proto::ChainModel chain_model;
  bool verification;
  bool crash_rule;
  double epsilon;
  const char* label;
};

class ConfigMatrix : public ::testing::TestWithParam<ConfigCase> {
 protected:
  static proto::ProtocolConfig make_config(const ConfigCase& c) {
    proto::ProtocolConfig cfg;
    cfg.schedule.policy = c.policy;
    cfg.schedule.subphases_times_i = c.times_i;
    cfg.schedule.epsilon = c.epsilon;
    cfg.verification.chain_model = c.chain_model;
    cfg.verification.enabled = c.verification;
    cfg.crash_rule = c.crash_rule;
    if (!c.verification) cfg.max_phase = 12;  // bound unverified stalls
    return cfg;
  }
};

TEST_P(ConfigMatrix, TiersAgreeExactly) {
  const ConfigCase c = GetParam();
  OverlayParams p;
  p.n = 192;
  p.d = 6;
  p.seed = 0xCAFE;
  const Overlay overlay = Overlay::build(p);
  util::Xoshiro256 rng(0xC0FFEE);
  const auto byz = graph::random_byzantine_mask(192, 7, rng);
  const auto cfg = make_config(c);

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto fast = proto::run_counting(overlay, byz, *s1, cfg, 0xD1CE);
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  sim::Engine engine(overlay, byz, *s2, cfg, 0xD1CE);
  const auto ref = engine.run();

  EXPECT_EQ(fast.estimate, ref.estimate) << c.label;
  EXPECT_EQ(fast.flood_rounds, ref.flood_rounds) << c.label;
  EXPECT_EQ(fast.instr.token_messages, ref.instr.token_messages) << c.label;
  EXPECT_EQ(fast.instr.verify_messages, ref.instr.verify_messages) << c.label;
  EXPECT_EQ(fast.instr.crashes, ref.instr.crashes) << c.label;
}

TEST_P(ConfigMatrix, CleanRunStaysAccurate) {
  const ConfigCase c = GetParam();
  OverlayParams p;
  p.n = 1024;
  p.d = 8;
  p.seed = 0xBEAD;
  const Overlay overlay = Overlay::build(p);
  const std::vector<bool> byz(1024, false);
  auto strat = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto cfg = make_config(c);
  const auto run = proto::run_counting(overlay, byz, *strat, cfg, 0xF1FE);
  const auto acc = proto::summarize_accuracy(run, 1024);
  EXPECT_EQ(acc.decided, acc.honest) << c.label;
  EXPECT_GT(acc.frac_in_band, 0.95) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrix,
    ::testing::Values(
        ConfigCase{proto::SchedulePolicy::kAppendix, true,
                   proto::ChainModel::kStrict, true, true, 0.1, "default"},
        ConfigCase{proto::SchedulePolicy::kPseudocode, true,
                   proto::ChainModel::kStrict, true, true, 0.1, "pseudocode"},
        ConfigCase{proto::SchedulePolicy::kAppendix, false,
                   proto::ChainModel::kStrict, true, true, 0.1, "alpha_only"},
        ConfigCase{proto::SchedulePolicy::kAppendix, true,
                   proto::ChainModel::kRewired, true, true, 0.1, "rewired"},
        ConfigCase{proto::SchedulePolicy::kAppendix, true,
                   proto::ChainModel::kStrict, false, true, 0.1, "no_verify"},
        ConfigCase{proto::SchedulePolicy::kAppendix, true,
                   proto::ChainModel::kStrict, true, false, 0.1, "no_crash"},
        ConfigCase{proto::SchedulePolicy::kAppendix, true,
                   proto::ChainModel::kStrict, true, true, 0.02, "tight_eps"},
        ConfigCase{proto::SchedulePolicy::kPseudocode, false,
                   proto::ChainModel::kRewired, true, true, 0.3, "loose_all"}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace byz
