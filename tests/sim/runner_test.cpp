#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace byz::sim {
namespace {

TEST(DeriveByzCount, MatchesPower) {
  EXPECT_EQ(derive_byz_count(1024, 0.5), 32u);
  EXPECT_EQ(derive_byz_count(1024, 1.0), 1u);
  EXPECT_EQ(derive_byz_count(65536, 0.5), 256u);
}

TEST(DeriveByzCount, CappedAtQuarter) {
  // δ → 0 would make everyone Byzantine; the cap keeps runs meaningful.
  EXPECT_LE(derive_byz_count(100, 0.01), 25u);
}

TEST(RunTrial, CleanTrialAllDecide) {
  TrialConfig cfg;
  cfg.overlay.n = 256;
  cfg.overlay.d = 6;
  cfg.byz_count = 0;
  cfg.seed = 5;
  const TrialResult r = run_trial(cfg);
  EXPECT_EQ(r.byz_count, 0u);
  EXPECT_EQ(r.accuracy.honest, 256u);
  EXPECT_EQ(r.accuracy.decided, 256u);
  EXPECT_EQ(r.accuracy.crashed, 0u);
  EXPECT_GT(r.accuracy.mean_ratio, 0.0);
}

TEST(RunTrial, DeterministicGivenSeed) {
  TrialConfig cfg;
  cfg.overlay.n = 200;
  cfg.overlay.d = 6;
  cfg.delta = 0.5;
  cfg.strategy = adv::StrategyKind::kFakeColor;
  cfg.seed = 9;
  const TrialResult a = run_trial(cfg);
  const TrialResult b = run_trial(cfg);
  EXPECT_EQ(a.run.estimate, b.run.estimate);
  EXPECT_EQ(a.accuracy.decided, b.accuracy.decided);
}

TEST(RunTrial, ByzCountDerivedFromDelta) {
  TrialConfig cfg;
  cfg.overlay.n = 1024;
  cfg.overlay.d = 6;
  cfg.delta = 0.5;
  cfg.seed = 3;
  const TrialResult r = run_trial(cfg);
  EXPECT_EQ(r.byz_count, 32u);
}

TEST(RunTrials, IndependentSeedsDiffer) {
  TrialConfig cfg;
  cfg.overlay.n = 200;
  cfg.overlay.d = 6;
  cfg.byz_count = 0;
  cfg.seed = 11;
  const auto results = run_trials(cfg, 4);
  ASSERT_EQ(results.size(), 4u);
  // At least two trials should differ somewhere (different overlays).
  bool any_diff = false;
  for (std::size_t t = 1; t < results.size() && !any_diff; ++t) {
    any_diff = results[t].run.estimate != results[0].run.estimate;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RunTrials, ThreadCountInvariant) {
  // Per-trial seed derivation makes results independent of OpenMP
  // scheduling; re-running must reproduce results exactly.
  TrialConfig cfg;
  cfg.overlay.n = 128;
  cfg.overlay.d = 6;
  cfg.delta = 0.6;
  cfg.strategy = adv::StrategyKind::kAdaptive;
  cfg.seed = 13;
  const auto a = run_trials(cfg, 6);
  const auto b = run_trials(cfg, 6);
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].run.estimate, b[t].run.estimate) << "trial " << t;
    EXPECT_EQ(a[t].byz_count, b[t].byz_count);
  }
}

}  // namespace
}  // namespace byz::sim
