// Monte-Carlo trial runner: builds an independent overlay + Byzantine
// placement + protocol run per trial, parallelized across trials with
// OpenMP. Seeds are derived per trial with SplitMix64 so results are
// bitwise independent of the thread count and schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"
#include "protocols/fastpath.hpp"

namespace byz::sim {

/// Byzantine budget B(n) = floor(n^(1-delta)) (the paper's bound).
[[nodiscard]] graph::NodeId derive_byz_count(graph::NodeId n, double delta);

struct TrialConfig {
  graph::OverlayParams overlay;          ///< n, d, k, (seed overridden per trial)
  double delta = 0.5;                    ///< drives B(n) unless byz_count >= 0
  std::int64_t byz_count = -1;           ///< explicit count; -1 = derive
  adv::StrategyKind strategy = adv::StrategyKind::kHonest;
  proto::ProtocolConfig protocol;
  std::uint64_t seed = 1;                ///< base seed of the trial series
};

struct TrialResult {
  proto::RunResult run;
  proto::Accuracy accuracy;
  graph::NodeId byz_count = 0;
};

/// One trial with the config's seed.
[[nodiscard]] TrialResult run_trial(const TrialConfig& cfg);

/// `trials` independent repetitions (per-trial seeds split from cfg.seed),
/// OpenMP-parallel. Results are ordered by trial index.
[[nodiscard]] std::vector<TrialResult> run_trials(const TrialConfig& cfg,
                                                  std::uint32_t trials);

}  // namespace byz::sim
