#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/digest.hpp"
#include "obs/trace.hpp"
#include "protocols/color.hpp"
#include "protocols/neighborhood.hpp"
#include "protocols/schedule.hpp"
#include "sim/world.hpp"

namespace byz::sim {

using graph::NodeId;
using proto::Color;

Engine::Engine(const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
               adv::Strategy& strategy, const proto::ProtocolConfig& cfg,
               std::uint64_t color_seed, proto::MidRunHooks* midrun,
               std::uint32_t start_phase, obs::RunDigester* digester)
    : overlay_(overlay),
      byz_(byz_mask),
      strategy_(strategy),
      cfg_(cfg),
      color_seed_(color_seed),
      midrun_(midrun),
      start_phase_(start_phase),
      digester_(digester),
      nb_(midrun ? midrun->node_bound() : overlay.num_nodes()),
      world_(World::make(overlay, byz_mask, color_seed)) {
  if (nb_ < overlay.num_nodes() || byz_mask.size() != nb_) {
    throw std::invalid_argument("Engine: mask size mismatch");
  }
  if (start_phase_ == 0) {
    throw std::invalid_argument("Engine: start_phase is 1-based (1 = no skip)");
  }
  if (midrun_ == nullptr) {
    owned_verifier_.emplace(overlay, byz_mask, cfg.verification);
    verifier_ = &*owned_verifier_;
  }
  nodes_.resize(nb_);
  inbox_.resize(nb_);
}

proto::RunResult Engine::run() {
  obs::Span run_span("engine.run");
  const NodeId n = overlay_.num_nodes();
  const std::uint32_t d = overlay_.params().d;
  run_span.arg("n", n).arg("start_phase", start_phase_);
  result_ = proto::RunResult{};
  result_.status.assign(nb_, proto::NodeStatus::kUndecided);
  result_.estimate.assign(nb_, 0);
  for (NodeId v = 0; v < nb_; ++v) {
    // Scheduled sybil joiners (ids past the snapshot) are Byzantine from
    // the start for bookkeeping, exactly as in the fast path.
    if (byz_[v]) result_.status[v] = proto::NodeStatus::kByzantine;
  }

  // --- Setup (Algorithm 2 lines 1-2): claims, conflicts, crashes. ---
  // Mid-run joiners skip setup: they were not present for the adjacency
  // exchange, so the claims and the crash rule span the snapshot only.
  proto::ClaimSet claims(overlay_);
  strategy_.setup_lies(world_, claims);
  if (cfg_.crash_rule) {
    // Reference path: run the full pairwise conflict detection per node
    // (the fast path uses the byz-pair shortcut; agreement is a test).
    for (NodeId u = 0; u < n; ++u) {
      const auto len = claims.claimed(u).size();
      for (std::uint32_t e = 0; e < overlay_.g().degree(u); ++e) {
        result_.instr.count_setup_list(len);
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (byz_[v]) continue;
      if (proto::detects_conflict(claims, v)) {
        nodes_[v].crashed = true;
        result_.status[v] = proto::NodeStatus::kCrashed;
        ++result_.instr.crashes;
      }
    }
  }

  const std::uint32_t max_phase = proto::resolve_max_phase(overlay_, cfg_);
  active_.assign(nb_, 0);
  active_count_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!byz_[v] && !nodes_[v].crashed) {
      active_[v] = 1;
      ++active_count_;
    }
  }
  participates_.assign(nb_, 0);
  std::fill(participates_.begin(), participates_.begin() + n, 1);
  // ε-warm entry: pre-advance the schedule clock past the skipped prefix
  // (mirrors the fast path bit for bit — see RunControls::start_phase).
  global_round_ =
      start_phase_ > 1
          ? proto::rounds_through_phase(start_phase_ - 1, d, cfg_.schedule)
          : 0;
  std::vector<NodeId> admitted;

  std::uint32_t phase = start_phase_ - 1;
  while (phase < max_phase && active_count_ > 0) {
    ++phase;
    obs::Span phase_span("engine.phase");
    phase_span.arg("phase", phase).arg("active_in", active_count_);
    if (midrun_ != nullptr) {
      // Phase boundary: the membership policy admits pending joiners (they
      // start generating this phase) and hands back the Verifier the
      // phase's floods must use (refreshed under kReadmitNextPhase).
      admitted.clear();
      verifier_ = midrun_->begin_phase(phase, admitted);
      for (const NodeId a : admitted) {
        if (a >= nb_ || participates_[a] != 0) continue;
        participates_[a] = 1;
        if (!byz_[a] && !nodes_[a].crashed &&
            result_.status[a] == proto::NodeStatus::kUndecided) {
          active_[a] = 1;
          ++active_count_;
        }
      }
    }
    if (digester_ != nullptr) {
      digester_->begin_phase(phase);
      digester_->note(obs::FlightEventKind::kPhaseBegin, active_count_,
                      admitted.size());
      proto::digest_phase_state(*digester_, *verifier_, result_.status,
                                result_.estimate, nb_);
    }
    for (auto& m : nodes_) m.fired_this_phase = false;
    const std::uint32_t subphases =
        proto::subphases_in_phase(phase, d, cfg_.schedule);
    result_.subphases_scheduled += subphases;
    for (std::uint32_t j = 1; j <= subphases; ++j) {
      run_subphase(phase, j,
                   proto::global_subphase_index(phase, j, d, cfg_.schedule));
    }

    // Mid-run churn: nodes that left the overlay during this phase are no
    // longer members — they take no estimate and leave the active set
    // before the decide sweep reads the fired flags.
    if (midrun_ != nullptr) {
      for (NodeId v = 0; v < nb_; ++v) {
        if (result_.status[v] == proto::NodeStatus::kDeparted ||
            !midrun_->departed(v)) {
          continue;
        }
        if (active_[v] != 0) {
          active_[v] = 0;
          --active_count_;
        }
        if (result_.status[v] != proto::NodeStatus::kByzantine) {
          result_.status[v] = proto::NodeStatus::kDeparted;
          result_.estimate[v] = 0;
          if (digester_ != nullptr) {
            digester_->fold_phase(obs::digest_state_term(v, 0xDE9));
          }
        }
      }
    }

    std::uint64_t decided_now = 0;
    for (NodeId v = 0; v < nb_; ++v) {
      if (active_[v] == 0 || nodes_[v].fired_this_phase) continue;
      active_[v] = 0;
      --active_count_;
      result_.status[v] = proto::NodeStatus::kDecided;
      result_.estimate[v] = phase;
      ++decided_now;
      if (digester_ != nullptr) {
        digester_->fold_phase(obs::digest_state_term(v, phase));
      }
    }
    if (digester_ != nullptr) {
      digester_->fold_phase(obs::mix2(decided_now, active_count_));
      digester_->close_phase();
    }
    phase_span.arg("active_out", active_count_);
  }
  result_.phases_executed = phase;
  result_.flood_rounds = result_.instr.flood_rounds;
  if (digester_ != nullptr) {
    for (NodeId v = 0; v < nb_; ++v) {
      digester_->fold_run(obs::digest_state_term(
          v, (static_cast<std::uint64_t>(result_.status[v]) << 32) |
                 result_.estimate[v]));
    }
    digester_->close_run();
  }
  run_span.arg("phases", phase).arg("rounds", result_.instr.flood_rounds);
  return result_;
}

void Engine::run_subphase(std::uint32_t phase, std::uint32_t j,
                          std::uint32_t s) {
  const auto& h = overlay_.h_simple();
  const bool byz_gen = strategy_.generates_honestly();
  const bool byz_fwd = strategy_.forwards_floods();
  const double threshold = proto::continue_threshold(phase, overlay_.params().d);

  // Draw colors: admitted active nodes generate; Byzantine machines track
  // the counterfactual honest draw when the strategy mimics the protocol.
  for (NodeId v = 0; v < nb_; ++v) {
    auto& m = nodes_[v];
    Color own = 0;
    const bool generates = (active_[v] != 0 || (byz_[v] && byz_gen)) &&
                           (midrun_ == nullptr || participates_[v] != 0);
    if (generates) own = proto::color_at(color_seed_, v, s);
    m.begin_subphase(own);
  }

  std::vector<proto::Injection> injections;
  strategy_.plan_subphase(world_, {phase, j, s}, injections);

  obs::Span sub_span("engine.subphase");
  sub_span.arg("phase", phase).arg("j", j);
  if (digester_ != nullptr) digester_->begin_subphase(j);
  std::vector<Color> recv(nb_, 0);
  for (std::uint32_t t = 1; t <= phase; ++t) {
    obs::Span round_span("engine.round");
    round_span.arg("step", t);
    // Mid-run churn: hand the hooks the canonical wavefront and let them
    // apply this round's events BEFORE the sends — so a node departing at
    // round r never sends at r and a joiner entering at r can receive at
    // r. The sender predicate below and the kernel's frontier derivation
    // are the same set, keeping both tiers bitwise equivalent.
    if (midrun_ != nullptr) {
      frontier_scratch_.clear();
      if (midrun_->wants_frontier()) {
        for (NodeId u = 0; u < nb_; ++u) {
          const auto& m = nodes_[u];
          if (m.crashed) continue;
          if (byz_[u] && !byz_fwd) continue;
          if (!midrun_->alive(u)) continue;
          const bool sends = (t == 1) ? (m.own > 0) : (m.fresh_step == t - 1);
          if (sends) frontier_scratch_.push_back(u);
        }
      }
      proto::RoundClock clock{phase, j, t, global_round_ + (t - 1)};
      midrun_->begin_round(clock, frontier_scratch_);
    }
    std::uint64_t sent_this_round = 0;

    // 1. Sends, based on state at the start of the step (forward-once).
    for (NodeId u = 0; u < nb_; ++u) {
      const auto& m = nodes_[u];
      if (m.crashed) continue;
      if (byz_[u] && !byz_fwd) continue;
      if (!present(u)) continue;
      const bool sends = (t == 1) ? (m.own > 0) : (m.fresh_step == t - 1);
      if (!sends) continue;
      // Same tagged term the kernel folds for its frontier senders; the
      // sender sets and relayed maxima agree bitwise (E26).
      if (digester_ != nullptr) {
        digester_->fold_round(obs::digest_sender_term(u, m.known));
      }
      const auto nbrs =
          midrun_ != nullptr ? midrun_->neighbors(u) : h.neighbors(u);
      result_.instr.count_token(nbrs.size());
      result_.instr.max_node_round_sends = std::max<std::uint64_t>(
          result_.instr.max_node_round_sends, nbrs.size());
      sent_this_round += nbrs.size();
      for (const NodeId v : nbrs) inbox_[v].push_back({u, m.known});
    }
    for (const auto& inj : injections) {
      if (inj.step != t || nodes_[inj.from].crashed) continue;
      if (!present(inj.from)) continue;
      const auto nbrs = midrun_ != nullptr ? midrun_->neighbors(inj.from)
                                           : h.neighbors(inj.from);
      result_.instr.count_token(nbrs.size());
      result_.instr.max_node_round_sends = std::max<std::uint64_t>(
          result_.instr.max_node_round_sends, nbrs.size());
      sent_this_round += nbrs.size();
      for (const NodeId v : nbrs) inbox_[v].push_back({inj.from, inj.value});
    }

    // 2. Delivery: each node drains its inbox; honest nodes verify every
    // token (sender state is still pre-close, so legit_fresh is exact).
    for (NodeId v = 0; v < nb_; ++v) {
      if (inbox_[v].empty()) continue;
      auto& m = nodes_[v];
      if (m.crashed || !present(v)) {
        inbox_[v].clear();
        continue;
      }
      for (const Token& tok : inbox_[v]) {
        if (!byz_[v]) {
          const auto& sm = nodes_[tok.from];
          const Color legit =
              (t == 1) ? sm.own : ((sm.fresh_step == t - 1) ? sm.known : 0);
          if (!verifier_->accept(tok.from, tok.color, t, legit, byz_[tok.from],
                                 result_.instr)) {
            continue;
          }
        }
        recv[v] = std::max(recv[v], tok.color);
      }
      inbox_[v].clear();
    }

    // 3. Close the step.
    for (NodeId v = 0; v < nb_; ++v) {
      if (recv[v] == 0) continue;
      // Ascending ids here, insertion order in the kernel: the XOR fold is
      // commutative, so the round digests still match.
      if (digester_ != nullptr) {
        digester_->fold_round(obs::digest_receiver_term(v, recv[v]));
      }
      auto& m = nodes_[v];
      if (t < phase) {
        m.best_before = std::max(m.best_before, recv[v]);
      } else {
        m.last_step = recv[v];
      }
      if (recv[v] > m.known) {
        m.known = recv[v];
        m.fresh_step = t;
      }
      recv[v] = 0;
    }
    if (digester_ != nullptr) digester_->close_round(sent_this_round);
    round_messages_.push_back(sent_this_round);
    round_span.arg("tokens", sent_this_round);
  }
  result_.instr.flood_rounds += phase;
  global_round_ += phase;
  ++result_.subphases_executed;

  // Line 18: evaluate the continuation predicate.
  for (NodeId v = 0; v < nb_; ++v) {
    auto& m = nodes_[v];
    if (active_[v] == 0 || m.fired_this_phase) continue;
    if (m.last_step > m.best_before &&
        static_cast<double>(m.last_step) > threshold) {
      m.fired_this_phase = true;
    }
  }
  if (digester_ != nullptr) {
    for (NodeId v = 0; v < nb_; ++v) {
      if (nodes_[v].fired_this_phase) {
        digester_->fold_subphase(obs::digest_state_term(v, 1));
      }
    }
    digester_->close_subphase();
  }
}

}  // namespace byz::sim
