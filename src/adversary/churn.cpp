#include "adversary/churn.hpp"

#include <algorithm>

namespace byz::adv {

namespace {

using dynamics::MutableOverlay;
using graph::NodeId;

bool is_byz(const std::vector<bool>& byz, NodeId v) {
  return v < byz.size() && byz[v];
}

/// Honest alive ids in stable-id order (the deterministic fallback pool);
/// a plain id scan, no sort — this runs once per churn event.
std::vector<NodeId> honest_alive(const MutableOverlay& overlay,
                                 const std::vector<bool>& byz) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < overlay.id_bound(); ++v) {
    if (overlay.is_alive(v) && !is_byz(byz, v)) out.push_back(v);
  }
  return out;
}

}  // namespace

const char* to_string(ChurnAdversary adversary) {
  switch (adversary) {
    case ChurnAdversary::kNone:
      return "none";
    case ChurnAdversary::kSybilBurst:
      return "sybil-burst";
    case ChurnAdversary::kTargetedDeparture:
      return "targeted-departure";
    case ChurnAdversary::kEclipse:
      return "eclipse";
  }
  return "?";
}

std::vector<ChurnAdversary> all_churn_adversaries() {
  return {ChurnAdversary::kNone, ChurnAdversary::kSybilBurst,
          ChurnAdversary::kTargetedDeparture, ChurnAdversary::kEclipse};
}

graph::NodeId eclipse_victim(const MutableOverlay& overlay,
                             const std::vector<bool>& byz) {
  // First honest alive stable id; typically terminates within a few probes.
  for (NodeId v = 0; v < overlay.id_bound(); ++v) {
    if (overlay.is_alive(v) && !is_byz(byz, v)) return v;
  }
  return graph::kInvalidNode;
}

graph::NodeId pick_departure(const MutableOverlay& overlay,
                             const std::vector<bool>& byz,
                             ChurnAdversary adversary, util::Xoshiro256& rng) {
  if (adversary != ChurnAdversary::kTargetedDeparture) {
    return overlay.random_alive(rng);
  }
  // Honest ring-neighbors of alive Byzantine nodes, deduplicated in stable
  // id order so the draw is independent of traversal incidentals.
  std::vector<NodeId> targets;
  for (NodeId b = 0; b < overlay.id_bound(); ++b) {
    if (!overlay.is_alive(b) || !is_byz(byz, b)) continue;
    for (std::uint32_t c = 0; c < overlay.num_cycles(); ++c) {
      for (const NodeId w :
           {overlay.successor(c, b), overlay.predecessor(c, b)}) {
        if (!is_byz(byz, w)) targets.push_back(w);
      }
    }
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  if (targets.empty()) targets = honest_alive(overlay, byz);
  if (targets.empty()) return overlay.random_alive(rng);
  return targets[rng.below(targets.size())];
}

std::vector<graph::NodeId> plan_join_anchors(const MutableOverlay& overlay,
                                             const std::vector<bool>& byz,
                                             ChurnAdversary adversary,
                                             bool joiner_byzantine,
                                             util::Xoshiro256& rng) {
  std::vector<NodeId> anchors(overlay.num_cycles());
  if (joiner_byzantine && adversary == ChurnAdversary::kEclipse) {
    const NodeId victim = eclipse_victim(overlay, byz);
    if (victim != graph::kInvalidNode) {
      std::fill(anchors.begin(), anchors.end(), victim);
      return anchors;
    }
  }
  for (auto& a : anchors) a = overlay.random_alive(rng);
  return anchors;
}

}  // namespace byz::adv
