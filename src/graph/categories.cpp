#include "graph/categories.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/tree_like.hpp"

namespace byz::graph {

double paper_radius_a(std::uint64_t n, std::uint32_t d, std::uint32_t k,
                      double delta) {
  return delta / (10.0 * k * std::log2(static_cast<double>(d - 1))) *
         std::log2(static_cast<double>(n));
}

std::vector<bool> random_byzantine_mask(NodeId n, NodeId count,
                                        util::Xoshiro256& rng) {
  if (count > n) throw std::invalid_argument("random_byzantine_mask: count > n");
  // Floyd's algorithm for a uniform k-subset without building a permutation.
  std::vector<bool> mask(n, false);
  for (NodeId j = n - count; j < n; ++j) {
    const auto t = static_cast<NodeId>(rng.below(j + 1));
    if (!mask[t]) {
      mask[t] = true;
    } else {
      mask[j] = true;
    }
  }
  return mask;
}

NodeCategories classify_categories(const Overlay& overlay,
                                   const std::vector<bool>& byz_mask,
                                   std::uint32_t ltl_radius,
                                   std::uint32_t category_radius) {
  const NodeId n = overlay.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("classify_categories: mask size mismatch");
  }
  NodeCategories cat;
  cat.radius = category_radius;
  cat.is_byz = byz_mask;

  const TreeLikeResult ltl =
      classify_tree_like(overlay.h(), overlay.params().d, ltl_radius);
  cat.is_ltl = ltl.is_tree_like;

  std::vector<NodeId> nlt_nodes;
  std::vector<NodeId> bad_nodes;
  for (NodeId v = 0; v < n; ++v) {
    if (byz_mask[v]) ++cat.byz;
    if (!cat.is_ltl[v]) {
      ++cat.nlt;
      nlt_nodes.push_back(v);
    }
    if (byz_mask[v] || !cat.is_ltl[v]) bad_nodes.push_back(v);
  }
  cat.honest = n - cat.byz;
  cat.ltl = n - cat.nlt;
  cat.bad = bad_nodes.size();

  // Safe: dist_G(v, NLT) > radius. Multi-source BFS on G to depth radius.
  cat.is_safe.assign(n, true);
  if (!nlt_nodes.empty()) {
    const auto dist =
        multi_source_distances(overlay.g(), nlt_nodes, category_radius + 1);
    for (NodeId v = 0; v < n; ++v) {
      cat.is_safe[v] = dist[v] > category_radius;  // kUnreachable counts safe
    }
  }
  // Byz-safe: dist_G(v, Bad) > radius.
  cat.is_byz_safe.assign(n, true);
  if (!bad_nodes.empty()) {
    const auto dist =
        multi_source_distances(overlay.g(), bad_nodes, category_radius + 1);
    for (NodeId v = 0; v < n; ++v) {
      cat.is_byz_safe[v] = dist[v] > category_radius;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (cat.is_safe[v]) {
      ++cat.safe;
    } else {
      ++cat.unsafe_;
    }
    if (cat.is_byz_safe[v]) {
      ++cat.byz_safe;
    } else {
      ++cat.bus;
    }
  }
  return cat;
}

namespace {

/// DFS for the longest simple Byzantine path extending `path` from `v`.
void chain_dfs(const Graph& h, const std::vector<bool>& byz,
               std::vector<bool>& on_path, NodeId v, std::uint32_t depth,
               std::uint32_t cap, std::uint32_t& best) {
  best = std::max(best, depth);
  if (best >= cap) return;
  for (const NodeId w : h.neighbors(v)) {
    if (byz[w] && !on_path[w]) {
      on_path[w] = true;
      chain_dfs(h, byz, on_path, w, depth + 1, cap, best);
      on_path[w] = false;
      if (best >= cap) return;
    }
  }
}

}  // namespace

std::uint32_t longest_byzantine_chain(const Graph& h_simple,
                                      const std::vector<bool>& byz_mask,
                                      std::uint32_t cap) {
  const NodeId n = h_simple.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("longest_byzantine_chain: mask size mismatch");
  }
  std::vector<bool> on_path(n, false);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < n && best < cap; ++v) {
    if (!byz_mask[v]) continue;
    best = std::max(best, 1u);  // a single Byzantine node is a chain of 1
    on_path[v] = true;
    chain_dfs(h_simple, byz_mask, on_path, v, 1, cap, best);
    on_path[v] = false;
  }
  return best;
}

}  // namespace byz::graph
