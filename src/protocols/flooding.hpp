// The per-subphase flood kernel (Algorithm 1/2 lines 10-17 inner loop),
// array-based. One subphase of phase i floods colors along H for exactly i
// steps under the forward-once rule: a node re-broadcasts only when its
// running maximum improves, so each send carries the sender's fresh max.
// Byzantine senders are driven by injections; honest receivers filter every
// received color through the Verifier.
//
// Round/phase lifecycle: a RUN is a sequence of phases i = 1, 2, ...; phase
// i runs subphases_in_phase(i) independent subphases; one subphase is one
// call into this kernel and floods for exactly i steps (= i protocol
// ROUNDS, the unit the paper's O(log³ n) bound counts). Within a subphase,
// step 1 broadcasts generated colors and steps 2..i relay improvements.
// Subphases share no state except the caller's fired flags; phases share
// no state except which nodes are still active.
//
// Per-node bookkeeping matches the pseudocode: k_t is the maximum ACCEPTED
// color received in step t; the subphase "fires" for v iff
//   k_i > k_t for all t < i   and   k_i > continue_threshold(i, d).
//
// Mid-protocol churn (FloodParams::live): when live hooks are attached the
// kernel resolves every neighbor set against the LIVE topology instead of
// `overlay`, and calls live->begin_round() before each step's sends so the
// owner can splice scheduled joins/leaves in first. Departed nodes drop
// messages from their departure round (sends and receives); joiners
// receive and relay from their entry round ("flood from entry") but never
// generate mid-subphase — generation is granted at phase boundaries by the
// MembershipPolicy (see verification.hpp / fastpath.hpp). With live ==
// nullptr the kernel is the static path, unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/small_world.hpp"
#include "protocols/color.hpp"
#include "protocols/midrun.hpp"
#include "protocols/verification.hpp"
#include "sim/instrumentation.hpp"
#include "util/bitset.hpp"

namespace byz::obs {
class RunDigester;
}  // namespace byz::obs

namespace byz::proto {

/// Which flood kernel a run uses. kSerial is the scalar reference oracle —
/// always available, never removed; kParallel is the word-packed OpenMP
/// kernel, bitwise identical to kSerial at every thread count (the
/// determinism-by-construction contract documented in flooding.cpp and
/// guarded by tests/protocols/flood_parallel_test.cpp and E30). kDefault
/// defers to the process-wide default (set_default_flood_exec, or the
/// BYZ_FLOOD_THREADS environment variable).
enum class FloodMode : std::uint8_t { kDefault, kSerial, kParallel };

/// The kernel knob threaded through RunControls, WarmConfig, MidRunConfig,
/// and ChurnRunConfig. threads == 0 means "use the hardware concurrency";
/// it is ignored under kSerial.
struct FloodExec {
  FloodMode mode = FloodMode::kDefault;
  std::uint32_t threads = 0;
  bool operator==(const FloodExec&) const = default;
};

/// Process-wide default used by FloodMode::kDefault. Initialized from the
/// BYZ_FLOOD_THREADS environment variable (N > 0 selects the parallel
/// kernel with N threads — this is how the TSan CI job forces the parallel
/// path through unmodified test binaries); overridable at runtime
/// (byzbench --flood-threads, size_service --flood-threads). Passing a
/// FloodExec whose mode is kDefault resets to the environment-derived
/// default.
void set_default_flood_exec(FloodExec exec);
[[nodiscard]] FloodExec default_flood_exec();

/// Resolves kDefault against the process default; the result's mode is
/// always kSerial or kParallel.
[[nodiscard]] FloodExec resolve_flood_exec(FloodExec exec);

/// One Byzantine token emission: node `from` sends `value` to its
/// H-neighbors at subphase step `step` (1-based). Acceptance is decided by
/// the Verifier at each honest receiver.
struct Injection {
  graph::NodeId from;
  std::uint32_t step;
  Color value;
};

/// Reusable per-subphase state (avoids reallocation across the hundreds of
/// subphases of a run).
class FloodWorkspace {
 public:
  void ensure(graph::NodeId n);

  std::vector<Color> known;          ///< running max (own color at start)
  std::vector<std::uint32_t> fresh;  ///< step at which known last improved
  std::vector<Color> best_before;    ///< max over k_t, t < current
  std::vector<Color> last_step;      ///< k_i of the final step
  std::vector<Color> recv;           ///< per-step accepted receive max
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next_frontier;
  std::vector<graph::NodeId> touched;
  /// Canonical (sorted) wavefront handed to MidRunHooks::begin_round; only
  /// populated when live hooks are attached.
  std::vector<graph::NodeId> live_frontier;
  /// Word-packed set representation used by the parallel kernel (the serial
  /// oracle keeps the vectors above). Membership is identical to the vector
  /// form; iteration is ascending node id by construction.
  util::Bitset frontier_bits;
  util::Bitset next_frontier_bits;
  util::Bitset touched_bits;
};

struct FloodParams {
  std::uint32_t steps = 1;      ///< = phase index i
  bool byz_forward = true;      ///< Byzantine nodes relay the flood
  /// Focused mode (the warm tier's straggler re-evaluation): when
  /// non-empty, only marked nodes generate, forward, and receive — the
  /// flood runs on the induced subgraph. A node's step-t value depends
  /// only on B_H(node, t), so outputs are EXACT at every node whose
  /// radius-`steps` ball the region covers; the caller must only read
  /// those. Empty = the ordinary whole-network flood.
  std::span<const std::uint8_t> region;
  /// Mid-protocol churn hooks (see file comment). Null = static path.
  /// Incompatible with `region` (the lazy tier is a static-topology
  /// optimization); run_flood_subphase throws if both are set.
  MidRunHooks* live = nullptr;
  /// Clock of this subphase's FIRST step; the kernel advances step/round
  /// per flood step and hands the result to live->begin_round(). Ignored
  /// when live is null.
  RoundClock clock;
  /// Divergence-forensics digester (obs/digest.hpp). When attached the
  /// kernel folds each round's conformant senders and accepted receivers
  /// and closes one round digest per flood step. Null = no digesting
  /// (the default; pure read-side either way).
  obs::RunDigester* digest = nullptr;
  /// Kernel selection (serial reference vs word-packed parallel). The two
  /// kernels produce bitwise-identical outputs, instrumentation, and digest
  /// trails at every thread count.
  FloodExec exec;
};

/// Runs one subphase. `gen_color[v]` is v's generated color (0 = does not
/// generate: decided or crashed honest nodes, and Byzantine nodes whose
/// strategy emits via `injections` instead). `crashed[v]` nodes neither
/// send nor receive. Outputs land in the workspace (`best_before`,
/// `last_step` drive the caller's termination predicate).
void run_flood_subphase(const graph::Overlay& overlay,
                        const std::vector<bool>& byz_mask,
                        const std::vector<bool>& crashed,
                        const Verifier& verifier, const FloodParams& params,
                        std::span<const Color> gen_color,
                        std::span<const Injection> injections,
                        FloodWorkspace& ws, sim::Instrumentation& instr);

}  // namespace byz::proto
