#include "incremental/dirty_ball.hpp"

namespace byz::incremental {

DirtyBallTracker::DirtyBallTracker(MutableOverlay& overlay)
    : overlay_(&overlay), k_(overlay.k()) {
  overlay_->set_observer(this);
}

DirtyBallTracker::~DirtyBallTracker() {
  if (overlay_->observer() == this) overlay_->set_observer(nullptr);
}

void DirtyBallTracker::mark(NodeId stable) {
  if (stable >= dirty_.size()) dirty_.resize(stable + 1, 0);
  if (dirty_[stable] == 0) {
    dirty_[stable] = 1;
    ++dirty_count_;
  }
}

void DirtyBallTracker::on_splice(std::span<const NodeId> touched) {
  ++splices_;
  const NodeId bound = overlay_->id_bound();
  if (stamp_.size() < bound) stamp_.resize(bound, 0);
  ++epoch_;

  // Multi-source BFS to depth k-1 in the post-op ring structure (the
  // witness-path prefix bound — see the header). Sources are the alive
  // touched endpoints; a departed node in `touched` is marked dirty
  // directly (so a consumer can drop its stored ball) but cannot seed the
  // walk — it has no edges left.
  frontier_.clear();
  for (const NodeId t : touched) {
    if (!overlay_->is_alive(t)) {
      mark(t);
      continue;
    }
    if (stamp_[t] != epoch_) {
      stamp_[t] = epoch_;
      mark(t);
      frontier_.push_back(t);
    }
  }
  const std::uint32_t cycles = overlay_->num_cycles();
  for (std::uint32_t depth = 1; depth < k_ && !frontier_.empty(); ++depth) {
    next_.clear();
    for (const NodeId u : frontier_) {
      for (std::uint32_t c = 0; c < cycles; ++c) {
        for (const NodeId w :
             {overlay_->successor(c, u), overlay_->predecessor(c, u)}) {
          if (stamp_[w] != epoch_) {
            stamp_[w] = epoch_;
            mark(w);
            next_.push_back(w);
          }
        }
      }
    }
    frontier_.swap(next_);
  }
}

void DirtyBallTracker::mark_all_dirty() {
  for (const NodeId v : overlay_->alive_nodes()) mark(v);
}

void DirtyBallTracker::clear() {
  dirty_.assign(dirty_.size(), 0);
  dirty_count_ = 0;
  splices_ = 0;
}

}  // namespace byz::incremental
