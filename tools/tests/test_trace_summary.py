"""Unit tests for tools/trace_summary.py.

Covers the two contracts CI leans on: valid trace documents roll up into
correct per-span and per-phase tables, and anything malformed — wrong
document shape, events missing required keys, unknown event phases — or
lossy (nonzero dropped-span count) fails LOUDLY with a nonzero exit so
the gate cannot silently pass on an incomplete summary.

Stdlib only; run with `python3 -m unittest discover tools/tests`.
"""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

import trace_summary


def span(name, ts, dur, tid=1, args=None):
    event = {"ph": "X", "name": name, "ts": ts, "dur": dur, "tid": tid,
             "pid": 1}
    if args is not None:
        event["args"] = args
    return event


def valid_doc():
    """Two phases on one thread; phase 1 encloses two rounds and one
    subphase, phase 2 encloses one round. One flood round floats outside
    any phase (cold-path warmup) and must not be attributed."""
    return {
        "traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1,
             "args": {"name": "byzbench"}},
            span("count.phase", 100, 400, args={"phase": 1}),
            span("flood.round", 120, 50, args={"tokens": 7}),
            span("flood.round", 200, 60, args={"tokens": 3}),
            span("count.subphase", 300, 80, args={"subphase": 2}),
            span("count.phase", 600, 200, args={"phase": 2}),
            span("flood.round", 650, 40, args={"tokens": 11}),
            span("flood.round", 20, 30, args={"tokens": 99}),  # orphan
        ],
        "otherData": {"dropped": 0},
    }


def write_doc(doc):
    fh = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False,
                                     encoding="utf-8")
    json.dump(doc, fh)
    fh.close()
    return fh.name


class LoadEventsTest(unittest.TestCase):
    def tearDown(self):
        if getattr(self, "path", None) and os.path.exists(self.path):
            os.unlink(self.path)

    def load(self, doc):
        self.path = write_doc(doc)
        return trace_summary.load_events(self.path)

    def test_valid_document_loads_and_skips_metadata(self):
        spans, dropped = self.load(valid_doc())
        self.assertEqual(len(spans), 7)  # M event skipped
        self.assertEqual(dropped, 0)
        self.assertTrue(all(e["ph"] == "X" for e in spans))

    def test_dropped_count_surfaces(self):
        doc = valid_doc()
        doc["otherData"]["dropped"] = 42
        _, dropped = self.load(doc)
        self.assertEqual(dropped, 42)

    def test_missing_trace_events_key_raises(self):
        with self.assertRaisesRegex(trace_summary.TraceError,
                                    "no traceEvents key"):
            self.load({"displayTimeUnit": "ms"})

    def test_trace_events_not_a_list_raises(self):
        with self.assertRaisesRegex(trace_summary.TraceError, "not a list"):
            self.load({"traceEvents": {"ph": "X"}})

    def test_event_missing_name_raises(self):
        with self.assertRaisesRegex(trace_summary.TraceError, "lacks ph/name"):
            self.load({"traceEvents": [{"ph": "X", "ts": 1, "dur": 1,
                                        "tid": 1}]})

    def test_unknown_event_phase_raises(self):
        # Schema drift: a future exporter emitting B/E pairs instead of X
        # must trip the validator, not silently produce empty tables.
        with self.assertRaisesRegex(trace_summary.TraceError,
                                    "unexpected ph='B'"):
            self.load({"traceEvents": [{"ph": "B", "name": "count.phase",
                                        "ts": 1, "tid": 1}]})

    def test_event_missing_numeric_field_raises(self):
        doc = {"traceEvents": [{"ph": "X", "name": "flood.round", "ts": 1,
                                "dur": "fast", "tid": 1}]}
        with self.assertRaisesRegex(trace_summary.TraceError,
                                    "lacks numeric dur"):
            self.load(doc)

    def test_unreadable_file_raises(self):
        with self.assertRaises(trace_summary.TraceError):
            trace_summary.load_events("/nonexistent/trace.json")

    def test_non_json_file_raises(self):
        self.path = write_doc({})  # placeholder to get a real path
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write("not json {")
        with self.assertRaises(trace_summary.TraceError):
            trace_summary.load_events(self.path)


class RollupTest(unittest.TestCase):
    def setUp(self):
        self.spans = [e for e in valid_doc()["traceEvents"]
                      if e["ph"] == "X"]

    def test_per_name_table_aggregates_and_sorts_by_total(self):
        rows = trace_summary.per_name_table(self.spans)
        by_name = {r["span"]: r for r in rows}
        self.assertEqual(by_name["count.phase"]["count"], 2)
        self.assertEqual(by_name["count.phase"]["total_us"], 600.0)
        self.assertEqual(by_name["count.phase"]["mean_us"], 300.0)
        self.assertEqual(by_name["flood.round"]["count"], 4)
        self.assertEqual(by_name["flood.round"]["total_us"], 180.0)
        totals = [r["total_us"] for r in rows]
        self.assertEqual(totals, sorted(totals, reverse=True))

    def test_per_phase_attribution_by_containment(self):
        rows = trace_summary.per_phase_table(self.spans)
        by_phase = {r["phase"]: r for r in rows}
        self.assertEqual(set(by_phase), {1, 2})
        self.assertEqual(by_phase[1]["rounds"], 2)
        self.assertEqual(by_phase[1]["tokens"], 10)
        self.assertEqual(by_phase[1]["subphases"], 1)
        self.assertEqual(by_phase[2]["rounds"], 1)
        self.assertEqual(by_phase[2]["tokens"], 11)
        # The orphan round (outside every phase) is attributed nowhere.
        self.assertEqual(sum(r["rounds"] for r in rows), 3)

    def test_cross_thread_spans_not_attributed(self):
        spans = [span("count.phase", 0, 1000, tid=1, args={"phase": 5}),
                 span("flood.round", 100, 10, tid=2, args={"tokens": 1})]
        rows = trace_summary.per_phase_table(spans)
        self.assertEqual(rows[0]["rounds"], 0)

    def test_innermost_phase_wins_on_nesting(self):
        spans = [span("engine.phase", 0, 1000, args={"phase": 1}),
                 span("engine.phase", 100, 100, args={"phase": 2}),
                 span("engine.round", 120, 10, args={"tokens": 4})]
        rows = trace_summary.per_phase_table(spans)
        by_phase = {r["phase"]: r for r in rows}
        self.assertEqual(by_phase[2]["rounds"], 1)
        self.assertEqual(by_phase[1]["rounds"], 0)


class MainExitCodeTest(unittest.TestCase):
    def tearDown(self):
        if getattr(self, "path", None) and os.path.exists(self.path):
            os.unlink(self.path)

    def run_main(self, doc, *flags):
        self.path = write_doc(doc)
        out, err = io.StringIO(), io.StringIO()
        old = sys.stdout, sys.stderr
        sys.stdout, sys.stderr = out, err
        try:
            code = trace_summary.main(["trace_summary.py", self.path, *flags])
        finally:
            sys.stdout, sys.stderr = old
        return code, out.getvalue(), err.getvalue()

    def test_valid_trace_exits_zero(self):
        code, out, err = self.run_main(valid_doc())
        self.assertEqual(code, 0)
        self.assertIn("per-span cost", out)
        self.assertIn("per-phase cost", out)
        self.assertEqual(err, "")

    def test_json_mode_round_trips(self):
        code, out, _ = self.run_main(valid_doc(), "--json")
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertEqual(doc["dropped"], 0)
        self.assertTrue(doc["spans"])
        self.assertTrue(doc["phases"])

    def test_dropped_spans_exit_nonzero(self):
        doc = valid_doc()
        doc["otherData"]["dropped"] = 3
        code, _, err = self.run_main(doc)
        self.assertEqual(code, 1)
        self.assertIn("3 spans were dropped", err)

    def test_malformed_input_exits_nonzero(self):
        code, _, err = self.run_main({"events": []})
        self.assertEqual(code, 1)
        self.assertIn("ERROR", err)


if __name__ == "__main__":
    unittest.main()
