#include "dynamics/churn_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace byz::dynamics {

const char* to_string(ChurnModel model) {
  switch (model) {
    case ChurnModel::kSteady:
      return "steady";
    case ChurnModel::kBurst:
      return "burst";
    case ChurnModel::kSybilJoin:
      return "sybil-join";
  }
  return "?";
}

std::vector<ChurnModel> all_churn_models() {
  return {ChurnModel::kSteady, ChurnModel::kBurst, ChurnModel::kSybilJoin};
}

std::uint32_t poisson(util::Xoshiro256& rng, double mean) {
  if (!(mean > 0.0)) return 0;
  if (mean > 64.0) {
    // Normal approximation N(mean, mean): above this the error is far below
    // churn-model noise, and Knuth's product method would need ~mean
    // uniforms per draw (and underflows exp(-mean) past ~700).
    const double u1 = 1.0 - rng.uniform();  // (0, 1]: log stays finite
    const double u2 = rng.uniform();
    constexpr double kTwoPi = 6.283185307179586;
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
    const double value = mean + std::sqrt(mean) * z;
    return value <= 0.0 ? 0u : static_cast<std::uint32_t>(value + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint32_t count = 0;
  double product = rng.uniform();
  while (product > limit) {
    ++count;
    product *= rng.uniform();
  }
  return count;
}

ChurnTrace generate_trace(const ChurnTraceParams& params) {
  if (params.n0 < 4) {
    throw std::invalid_argument("generate_trace: need n0 >= 4");
  }
  ChurnTrace trace;
  trace.params = params;
  trace.epochs.reserve(params.epochs);

  util::Xoshiro256 rng(util::mix_seed(params.seed, 0xC4A1));
  const graph::NodeId floor_n = std::max<graph::NodeId>(params.min_n, 4);
  graph::NodeId n = params.n0;
  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    ChurnEpoch epoch;
    epoch.joins = poisson(rng, params.arrival_rate);
    epoch.leaves = poisson(rng, params.departure_rate);
    if (e == params.burst_epoch) {
      const auto burst = static_cast<std::uint32_t>(
          params.burst_fraction * static_cast<double>(n));
      if (params.model == ChurnModel::kBurst) epoch.leaves += burst;
      if (params.model == ChurnModel::kSybilJoin) epoch.sybil_joins = burst;
    }
    const graph::NodeId after_joins = n + epoch.joins + epoch.sybil_joins;
    if (after_joins > floor_n) {
      epoch.leaves = std::min(
          epoch.leaves, static_cast<std::uint32_t>(after_joins - floor_n));
    } else {
      epoch.leaves = 0;
    }
    epoch.n_after = after_joins - epoch.leaves;
    n = epoch.n_after;
    trace.epochs.push_back(epoch);
  }
  return trace;
}

}  // namespace byz::dynamics
