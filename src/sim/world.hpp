// The full-information view handed to adversary strategies (§2.1: Byzantine
// nodes know the entire state of every node, including random choices made
// in the current AND future rounds). Colors are a deterministic function of
// (seed, node, global subphase), so "seeing the future" is random access
// into the same coin table the honest nodes will draw from.
//
// Scope under mid-run churn: the World is built from the RUN-START
// snapshot, so byz_nodes (and therefore every strategy's injection plan)
// spans the snapshot's members only — scheduled mid-run joiners, sybil or
// honest, are invisible to message-level strategies until the next run.
// That is the documented model boundary of dynamics/midrun.hpp, and it is
// why both execution tiers can share one World without re-deriving it per
// membership change. The CHURN adversary's view is separate: it watches
// the live topology (and, for frontier targeting, the flood wavefront)
// through the MidRunHooks machinery, not through this struct.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/small_world.hpp"
#include "protocols/color.hpp"

namespace byz::sim {

struct World {
  const graph::Overlay* overlay = nullptr;
  const std::vector<bool>* byz_mask = nullptr;
  std::vector<graph::NodeId> byz_nodes;  ///< ids of Byzantine nodes
  std::uint64_t color_seed = 0;
  std::uint64_t true_n = 0;  ///< the adversary of course knows n

  /// The color node v will draw in global subphase s (honest draw).
  [[nodiscard]] proto::Color color(graph::NodeId v, std::uint32_t s) const noexcept {
    return proto::color_at(color_seed, v, s);
  }

  [[nodiscard]] bool is_byz(graph::NodeId v) const { return (*byz_mask)[v]; }

  /// Builds the view (collects byz ids).
  [[nodiscard]] static World make(const graph::Overlay& overlay,
                                  const std::vector<bool>& byz_mask,
                                  std::uint64_t color_seed);
};

inline World World::make(const graph::Overlay& overlay,
                         const std::vector<bool>& byz_mask,
                         std::uint64_t color_seed) {
  World w;
  w.overlay = &overlay;
  w.byz_mask = &byz_mask;
  w.color_seed = color_seed;
  w.true_n = overlay.num_nodes();
  for (graph::NodeId v = 0; v < overlay.num_nodes(); ++v) {
    if (byz_mask[v]) w.byz_nodes.push_back(v);
  }
  return w;
}

}  // namespace byz::sim
