// Deterministic, splittable random number generation.
//
// Everything in the simulator is seeded: a trial is reproducible from its
// 64-bit seed alone, and per-node / per-subphase streams are derived with
// SplitMix64 so results are independent of thread scheduling. This is the
// standard discipline for parallel Monte-Carlo sweeps: never share a stream
// across OpenMP threads; derive child streams by hashing (seed, index).
#pragma once

#include <cstdint>
#include <limits>

namespace byz::util {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// splitter and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes two 64-bit values into one; used to derive child seeds as
/// mix(seed, stream_index) without correlations between streams.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2)));
  sm.next();
  return sm.next() ^ b;
}

/// Xoshiro256**: fast, statistically strong PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply; rejection keeps the result exactly uniform.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1): 53 mantissa bits.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Fair coin.
  constexpr bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Derive an independent child generator for stream `index`.
  [[nodiscard]] constexpr Xoshiro256 split(std::uint64_t index) const noexcept {
    return Xoshiro256(mix_seed(s_[0] ^ s_[3], index));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Number of fair-coin flips until (and including) the first head:
/// Pr[X = r] = 2^(-r), r >= 1. This is the "color" distribution of the
/// paper (Algorithm 1, line 10). Implemented as 1 + count of leading
/// tails in a 64-bit word; the tail beyond 64 recurses (probability 2^-64).
[[nodiscard]] inline std::uint32_t geometric_color(Xoshiro256& rng) noexcept {
  std::uint32_t flips = 0;
  for (;;) {
    const std::uint64_t bits = rng();
    if (bits != 0) {
      // Position of the lowest set bit = number of tails before first head.
      return flips + static_cast<std::uint32_t>(__builtin_ctzll(bits)) + 1;
    }
    flips += 64;
  }
}

/// Standard exponential variate with rate `lambda` (inverse-CDF method).
[[nodiscard]] inline double exponential(Xoshiro256& rng,
                                        double lambda = 1.0) noexcept {
  // 1 - uniform() is in (0, 1]; log of it is finite.
  double u = 1.0 - rng.uniform();
  return -__builtin_log(u) / lambda;
}

}  // namespace byz::util
