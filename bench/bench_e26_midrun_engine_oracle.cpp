// E26 — the mid-run equivalence ORACLE at nonzero churn: the message-level
// sim::Engine and the array fast path must produce bitwise-identical
// MidRunOutcomes — statuses, estimates, phase/round/subphase counts, every
// instrumentation counter, the run→stable map, the mask evolution, and the
// event bookkeeping — when driven by the SAME ChurnSchedule under the same
// MembershipPolicy. E24 pinned the machinery at zero churn; this sweep
// pins it where it matters: real mid-run joins/leaves, both policies, and
// the adversarial frontier/boundary schedules, across strategies and
// rates. CI asserts metrics.guard.divergences == 0 and diffs the manifest
// across --jobs values.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

/// Per-trial result: outcome parity (the guard, identical audited or not)
/// plus the audit-only digest facts that feed the DIGEST_e26.json sidecar.
struct TrialAudit {
  std::uint32_t ok = 0;
  std::uint64_t digest = 0;
  std::uint32_t trail_divergences = 0;
};

void run_e26(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(9, ctx.max_exp(10));
  const auto t = ctx.trials(3);
  const double rates[] = {1.0, 3.0};  // x n0/128 events per run
  const adv::StrategyKind strategies[] = {adv::StrategyKind::kFakeColor,
                                          adv::StrategyKind::kAdaptive};
  const proto::MembershipPolicy policies[] = {
      proto::MembershipPolicy::kTreatAsSilent,
      proto::MembershipPolicy::kReadmitNextPhase};
  const auto schedules = adv::all_midrun_schedule_strategies();

  util::Table table("E26: engine vs fastpath under mid-run churn (" +
                    std::to_string(t) +
                    " trials per cell, d=6, bitwise comparison)");
  table.columns({"n0", "strategy", "policy", "schedule", "events/run",
                 "runs compared", "identical"});
  std::uint64_t total = 0, identical = 0;
  std::uint64_t digest_xor = 0, trail_divergences = 0;
  for (const auto n0 : sizes) {
    for (const auto strategy : strategies) {
      for (const auto policy : policies) {
        for (const auto schedule_strategy : schedules) {
          for (const double rate : rates) {
            const auto events = static_cast<std::uint32_t>(rate * n0 / 128.0);
            const std::uint64_t base_seed =
                0xE26 + n0 + static_cast<std::uint64_t>(rate * 16) +
                static_cast<std::uint64_t>(schedule_strategy);
            const auto oks = ctx.scheduler().map(t, [&](std::uint64_t i) {
              const auto seed =
                  bench_core::TrialScheduler::trial_seed(base_seed, i);
              dynamics::MutableOverlay overlay(n0, 6, 0, seed);
              util::Xoshiro256 place_rng(util::mix_seed(seed, 0x0B12));
              const std::vector<bool> byz = graph::random_byzantine_mask(
                  n0, sim::derive_byz_count(n0, 0.7), place_rng);

              dynamics::ChurnEpoch epoch;
              epoch.joins = events / 2;
              epoch.sybil_joins = events / 8;
              epoch.leaves = events - epoch.joins - epoch.sybil_joins;
              proto::ProtocolConfig cfg;
              const auto horizon = dynamics::expected_horizon_rounds(
                  n0, 6, cfg.schedule);
              const auto schedule = adv::derive_adversarial_schedule(
                  epoch, horizon, seed, schedule_strategy, 6, cfg.schedule);

              dynamics::MidRunConfig mid_cfg;
              mid_cfg.policy = policy;
              mid_cfg.schedule_strategy = schedule_strategy;
              util::Xoshiro256 churn_rng(util::mix_seed(seed, 0xC002));
              // --audit: both tiers digest every round; divergence emits a
              // byzobs/forensics/v1 report under --digest-out. The guard
              // stays an OUTCOME check either way, so the BENCH manifest is
              // bitwise identical audited or not.
              obs::AuditConfig audit;
              audit.scenario = "e26";
              audit.seed = seed;
              audit.flags = "--audit";
              audit.out_dir = ctx.digest_out();
              const auto cmp = dynamics::compare_midrun_tiers(
                  overlay, byz, strategy, cfg, seed, schedule, mid_cfg,
                  adv::ChurnAdversary::kNone, churn_rng,
                  ctx.audit() ? &audit : nullptr);
              TrialAudit r;
              r.ok = cmp.identical ? 1 : 0;
              r.digest = cmp.run_digest_fastpath;
              r.trail_divergences = !cmp.digests_identical ? 1 : 0;
              return r;
            });
            std::uint64_t cell_ok = 0;
            for (const auto& r : oks) {
              cell_ok += r.ok;
              digest_xor ^= r.digest;
              trail_divergences += r.trail_divergences;
            }
            total += t;
            identical += cell_ok;
            table.row()
                .cell(std::uint64_t{n0})
                .cell(adv::to_string(strategy))
                .cell(proto::to_string(policy))
                .cell(adv::to_string(schedule_strategy))
                .cell(std::uint64_t{events})
                .cell(std::uint64_t{t})
                .cell(cell_ok == t ? "yes" : "NO");
          }
        }
      }
    }
  }
  table.note("Each comparison runs run_counting_midrun (array fast path) "
             "and run_counting_midrun_engine (message-level engine) from "
             "identical initial state — same overlay copy, Byzantine mask, "
             "churn rng, and ChurnSchedule — and demands full bitwise "
             "identity of the outcomes. Unlike E24 this sweep applies REAL "
             "mid-run events, including the adversarial frontier-leave and "
             "boundary-join-storm schedules, so the fastpath's mid-run "
             "membership machinery is cross-checked by an independent "
             "implementation at every rate/policy/strategy combination.");
  ctx.emit(table);

  Json guard = Json::object();
  guard["identical"] = (identical == total);
  guard["divergences"] = total - identical;
  guard["compared"] = total;
  ctx.metric("guard", std::move(guard));
  if (ctx.audit()) {
    write_digest_sidecar(ctx, "e26", digest_xor, total, trail_divergences);
  }
}

}  // namespace

BYZBENCH_REGISTER(e26) {
  ScenarioSpec spec;
  spec.id = "e26";
  spec.title = "Mid-run oracle: engine vs fastpath bitwise at nonzero churn";
  spec.claim = "Under identical mid-run churn schedules — uniform or "
               "adversarial, both membership policies — the message-level "
               "engine and the array fast path produce bitwise-identical "
               "outcomes, making tier equivalence a true mid-run oracle";
  spec.grid = {{"strategy", {"fake-color", "adaptive"}},
               {"policy", {"treat-as-silent", "readmit-next-phase"}},
               {"schedule",
                {"uniform", "frontier-leaves", "boundary-join-storm"}},
               {"rate", {"1x", "3x"}},
               pow2_axis(9, 10)};
  spec.base_trials = 3;
  spec.metrics = {"guard.identical", "guard.divergences"};
  spec.run = run_e26;
  return spec;
}
