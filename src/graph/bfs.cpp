#include "graph/bfs.hpp"

#include <stdexcept>

namespace byz::graph {

void BfsScratch::ensure(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    epoch_ = 0;
  }
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src,
                                         std::uint32_t max_depth) {
  if (src >= g.num_nodes()) throw std::out_of_range("bfs_distances: bad src");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::uint32_t depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && depth < max_depth) {
    next.clear();
    ++depth;
    for (const NodeId u : frontier) {
      for (const NodeId w : g.neighbors(u)) {
        if (dist[w] == kUnreachable) {
          dist[w] = depth;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

void bfs_ball(const Graph& g, NodeId src, std::uint32_t radius,
              BfsScratch& scratch, std::vector<BallEntry>& out) {
  out.clear();
  scratch.ensure(g.num_nodes());
  scratch.new_epoch();
  scratch.mark(src);
  out.push_back({src, 0});
  std::size_t level_begin = 0;
  for (std::uint32_t depth = 1; depth <= radius; ++depth) {
    const std::size_t level_end = out.size();
    if (level_begin == level_end) break;  // ball stopped growing
    for (std::size_t i = level_begin; i < level_end; ++i) {
      const NodeId u = out[i].node;
      for (const NodeId w : g.neighbors(u)) {
        if (!scratch.visited(w)) {
          scratch.mark(w);
          out.push_back({w, static_cast<std::uint8_t>(depth)});
        }
      }
    }
    level_begin = level_end;
  }
}

std::vector<std::uint32_t> multi_source_distances(const Graph& g,
                                                  std::span<const NodeId> sources,
                                                  std::uint32_t max_depth) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier;
  for (const NodeId s : sources) {
    if (s >= g.num_nodes()) {
      throw std::out_of_range("multi_source_distances: bad source");
    }
    if (dist[s] != 0 || frontier.empty() || frontier.back() != s) {
      if (dist[s] == kUnreachable) {
        dist[s] = 0;
        frontier.push_back(s);
      }
    }
  }
  std::uint32_t depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && depth < max_depth) {
    next.clear();
    ++depth;
    for (const NodeId u : frontier) {
      for (const NodeId w : g.neighbors(u)) {
        if (dist[w] == kUnreachable) {
          dist[w] = depth;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

Farthest farthest_node(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  Farthest best{src, 0};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] > best.dist) best = {v, dist[v]};
  }
  return best;
}

}  // namespace byz::graph
