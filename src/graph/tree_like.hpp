// Locally-tree-like classification (Definitions 7/8, Lemma 1/21): node w is
// LTL at radius r iff the subgraph induced by B(w, r) in the d-regular H is
// a full (d-1)-ary tree. Equivalently (and this is how we test it): the
// ball has exactly the tree size 1 + d * ((d-1)^r - 1)/(d-2) — any cross,
// back, or parallel edge shrinks the BFS ball below that.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::graph {

/// |B(w, r)| in the infinite d-regular tree.
[[nodiscard]] std::uint64_t tree_ball_size(std::uint32_t d, std::uint32_t r);

/// The paper's LTL radius r = log n / (10 log d) (base-2 logs), at least
/// the value it evaluates to; < 1 for all practical n — callers typically
/// clamp with max(1, ...). Returned un-clamped so experiments can report it.
[[nodiscard]] double paper_ltl_radius(std::uint64_t n, std::uint32_t d);

struct TreeLikeResult {
  std::vector<bool> is_tree_like;  ///< per node
  std::uint64_t count = 0;         ///< number of LTL nodes
  std::uint32_t radius = 0;        ///< radius used
};

/// Classifies every node of the d-regular multigraph H at the given radius.
/// Uses the multigraph adjacency (parallel edges make a node atypical, as
/// they must). OpenMP-parallel.
[[nodiscard]] TreeLikeResult classify_tree_like(const Graph& h_multi,
                                                std::uint32_t d,
                                                std::uint32_t radius);

}  // namespace byz::graph
