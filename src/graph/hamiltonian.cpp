#include "graph/hamiltonian.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace byz::graph {

Graph build_hamiltonian_graph(NodeId n, std::uint32_t d,
                              util::Xoshiro256& rng) {
  if (n < 3) throw std::invalid_argument("H(n,d): need n >= 3");
  if (d < 4 || d % 2 != 0) {
    throw std::invalid_argument("H(n,d): need even d >= 4");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * d / 2);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (std::uint32_t cycle = 0; cycle < d / 2; ++cycle) {
    // Fisher-Yates; a uniformly random permutation induces a uniformly
    // random Hamiltonian cycle (up to rotation/reflection, which do not
    // change the edge set distribution).
    for (NodeId i = n - 1; i > 0; --i) {
      const auto j = static_cast<NodeId>(rng.below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (NodeId i = 0; i < n; ++i) {
      edges.emplace_back(perm[i], perm[(i + 1) % n]);
    }
  }
  return Graph::from_edges(n, edges, /*dedup=*/false);
}

Graph simplify(const Graph& multi) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(multi.num_edges());
  for (NodeId v = 0; v < multi.num_nodes(); ++v) {
    for (const NodeId w : multi.neighbors(v)) {
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return Graph::from_edges(multi.num_nodes(), edges, /*dedup=*/true);
}

}  // namespace byz::graph
