// E19 — resilience to adversarial joins: the Byzantine budget is not fixed
// at bootstrap but grows through the churn surface. Three join-time
// adversaries (adversary/churn.hpp):
//   * sybil-burst        — a burst of Byzantine joiners, random splices
//                          (random placement, budget jump);
//   * eclipse            — the same burst, but every sybil wraps one victim
//                          node in every ring (adversarial placement
//                          reached through legal joins);
//   * targeted-departure — no sybils; the adversary instead steers WHICH
//                          honest nodes leave (ring-neighbors of Byzantine
//                          nodes), thickening Byzantine chains.
// Measures the in-band fraction before/after the attack epoch and the
// verifier's injection-catch counts as the Byzantine fraction rises.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e19(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(10));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kAttackEpoch = 3;
  constexpr std::uint32_t kEpochs = 8;

  util::Table table("E19: sybil-join resilience, d=6 (" + std::to_string(t) +
                    " trials, attack at epoch " +
                    std::to_string(kAttackEpoch) + ")");
  table.columns({"n0", "adversary", "burst", "byz frac after",
                 "in-band pre", "in-band post", "final in-band"});
  std::vector<double> post_band;
  for (const auto n0 : sizes) {
    for (const auto adversary :
         {adv::ChurnAdversary::kSybilBurst, adv::ChurnAdversary::kEclipse,
          adv::ChurnAdversary::kTargetedDeparture}) {
      const bool sybil = adversary != adv::ChurnAdversary::kTargetedDeparture;
      for (const double fraction : sybil ? std::vector<double>{0.1, 0.25}
                                         : std::vector<double>{0.25}) {
        dynamics::ChurnRunConfig cfg;
        cfg.trace.n0 = n0;
        cfg.trace.epochs = kEpochs;
        cfg.trace.arrival_rate = n0 / 64.0;
        cfg.trace.departure_rate = n0 / 64.0;
        cfg.trace.burst_epoch = kAttackEpoch;
        cfg.trace.burst_fraction = fraction;
        cfg.trace.min_n = n0 / 4;
        // Targeted departure attacks through kBurst departures; the sybil
        // adversaries attack through kSybilJoin arrivals.
        cfg.trace.model = sybil ? dynamics::ChurnModel::kSybilJoin
                                : dynamics::ChurnModel::kBurst;
        cfg.d = 6;
        cfg.delta = 0.7;
        cfg.strategy = adv::StrategyKind::kFakeColor;
        cfg.churn_adversary = adversary;

        const auto base_seed = 0xE19 + n0 +
                               static_cast<std::uint64_t>(fraction * 100) +
                               (static_cast<std::uint64_t>(adversary) << 8);
        const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
          auto trial_cfg = cfg;
          trial_cfg.trace.seed =
              bench_core::TrialScheduler::trial_seed(base_seed, i);
          trial_cfg.seed = trial_cfg.trace.seed;
          return dynamics::run_churn(trial_cfg);
        });

        util::OnlineStats byz_frac, pre, post, final_band;
        for (const auto& run : runs) {
          const auto& attack = run.epochs[kAttackEpoch];
          byz_frac.add(static_cast<double>(attack.byz_alive) /
                       static_cast<double>(attack.n_true));
          pre.add(run.epochs[kAttackEpoch - 1].fresh.frac_in_band);
          post.add(attack.fresh.frac_in_band);
          post_band.push_back(attack.fresh.frac_in_band);
          final_band.add(run.epochs.back().fresh.frac_in_band);
        }
        table.row()
            .cell(std::uint64_t{n0})
            .cell(adv::to_string(adversary))
            .cell(util::format_double(100.0 * fraction, 0) + "%")
            .cell(byz_frac.mean(), 4)
            .cell(pre.mean(), 4)
            .cell(post.mean(), 4)
            .cell(final_band.mean(), 4);
      }
    }
  }
  table.note("Sybil joins raise the Byzantine fraction mid-trace; eclipse "
             "placement concentrates the same budget on one victim's "
             "neighborhood, and targeted departures thin the honest side "
             "of Byzantine chains instead. The verifier + crash rule keep "
             "the network-wide in-band fraction high until the budget "
             "exceeds the paper's n^(1-delta) regime.");
  ctx.emit(table);
  ctx.record_accuracy("post_attack_in_band", post_band);
}

}  // namespace

BYZBENCH_REGISTER(e19) {
  ScenarioSpec spec;
  spec.id = "e19";
  spec.title = "Sybil-join and eclipse resilience under churn";
  spec.claim = "Dynamic overlays: join-time adversaries (sybil burst, "
               "eclipse placement, targeted departures) degrade accuracy "
               "only once the Byzantine budget leaves the paper's regime";
  spec.grid = {{"adversary",
                {"sybil-burst", "eclipse", "targeted-departure"}},
               {"burst_fraction", {"0.1", "0.25"}},
               pow2_axis(10, 10)};
  spec.base_trials = 3;
  spec.metrics = {"messages", "accuracy.post_attack_in_band"};
  spec.run = run_e19;
  return spec;
}
