// End-to-end behavior of Algorithm 1 (the basic counting protocol) in the
// clean setting of §3.1/§3.2.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/metrics.hpp"
#include "protocols/fastpath.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n, std::uint32_t d = 8, std::uint64_t seed = 1) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(Algo1, EveryNodeDecides) {
  const Overlay o = sample(1024);
  const auto r = run_basic_counting(o, 42);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<int>(r.status[v]),
              static_cast<int>(NodeStatus::kDecided));
    EXPECT_GE(r.estimate[v], 1u);
  }
}

TEST(Algo1, EstimateTracksDiameter) {
  // Termination happens once the flood ball stops growing, i.e. around the
  // node's eccentricity ≈ diameter(H) ≈ log n / log(d-1).
  const Overlay o = sample(2048);
  const auto r = run_basic_counting(o, 7);
  const auto diam = graph::diameter(o.h_simple());
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    EXPECT_LE(r.estimate[v], diam.value + 2);
    EXPECT_GE(r.estimate[v], 1u);
  }
}

TEST(Algo1, ConstantFactorOfLogN) {
  // Theorem 1's conclusion in the clean setting: estimates within a
  // constant factor of log2 n, with the constant ≈ 1/log2(d-1).
  for (const NodeId n : {512u, 2048u, 8192u}) {
    const Overlay o = sample(n, 8, n);
    const auto r = run_basic_counting(o, 11);
    const auto acc = summarize_accuracy(r, n);
    EXPECT_GT(acc.frac_in_band, 0.99) << "n=" << n;
    EXPECT_GT(acc.mean_ratio, 0.15) << "n=" << n;
    EXPECT_LT(acc.mean_ratio, 1.0) << "n=" << n;
  }
}

TEST(Algo1, RatioStableAcrossScale) {
  // The mean ratio est/log2(n) must not drift with n (constant factor).
  double r1 = 0;
  double r2 = 0;
  {
    const Overlay o = sample(1024, 8, 3);
    r1 = summarize_accuracy(run_basic_counting(o, 5), 1024).mean_ratio;
  }
  {
    const Overlay o = sample(16384, 8, 4);
    r2 = summarize_accuracy(run_basic_counting(o, 5), 16384).mean_ratio;
  }
  EXPECT_NEAR(r1, r2, 0.15);
}

TEST(Algo1, RoundComplexityPolylog) {
  // Θ(log^3 n) bound: measure that quadrupling n leaves rounds within the
  // cubic envelope of the log growth.
  const Overlay small = sample(1024, 8, 5);
  const Overlay large = sample(16384, 8, 6);
  const auto rs = run_basic_counting(small, 9);
  const auto rl = run_basic_counting(large, 9);
  const double scale = std::pow(std::log2(16384.0) / std::log2(1024.0), 3.0);
  EXPECT_LE(static_cast<double>(rl.flood_rounds),
            scale * static_cast<double>(rs.flood_rounds) * 1.5);
}

TEST(Algo1, EpsilonControlsEarlyDeciders) {
  // Smaller ε ⇒ more subphases ⇒ fewer wrong early decisions. Check the
  // monotone trend of early-decider fractions.
  const Overlay o = sample(4096, 8, 7);
  ScheduleConfig strict;
  strict.epsilon = 0.02;
  ScheduleConfig loose;
  loose.epsilon = 0.5;
  const auto rs = run_basic_counting(o, 13, strict);
  const auto rl = run_basic_counting(o, 13, loose);
  const auto diam = graph::diameter(o.h_simple());
  auto early = [&](const RunResult& r) {
    std::uint64_t count = 0;
    for (const auto e : r.estimate) {
      if (e + 2 < diam.value) ++count;
    }
    return count;
  };
  EXPECT_LE(early(rs), early(rl));
}

TEST(Algo1, MessagesAreSmallAndBounded) {
  const Overlay o = sample(1024, 8, 8);
  const auto r = run_basic_counting(o, 15);
  // Per-node per-round fan-out never exceeds the H-degree d.
  EXPECT_LE(r.instr.max_node_round_sends, 8u);
  // No verification traffic in Algorithm 1.
  EXPECT_EQ(r.instr.verify_messages, 0u);
  EXPECT_EQ(r.instr.crashes, 0u);
}

TEST(Algo1, DeterministicGivenSeed) {
  const Overlay o = sample(512, 6, 9);
  const auto a = run_basic_counting(o, 21);
  const auto b = run_basic_counting(o, 21);
  EXPECT_EQ(a.estimate, b.estimate);
  const auto c = run_basic_counting(o, 22);
  EXPECT_NE(a.estimate, c.estimate);  // different coins, different run
}

TEST(Algo1, WorksAcrossDegrees) {
  for (const std::uint32_t d : {4u, 6u, 8u, 12u}) {
    OverlayParams p;
    p.n = 1024;
    p.d = d;
    p.seed = d;
    const Overlay o = Overlay::build(p);
    const auto r = run_basic_counting(o, 17);
    const auto acc = summarize_accuracy(r, 1024);
    EXPECT_GT(acc.frac_in_band, 0.95) << "d=" << d;
  }
}

}  // namespace
}  // namespace byz::proto
