// Shared overlay cache for the orchestrator: scenarios that sweep the same
// (n, d, seed) grid reuse one immutable Overlay instead of re-sampling it.
// Keys carry the full OverlayParams INCLUDING the topology generation tag,
// so an epoch snapshot of an evolving overlay (generation != 0) can never
// alias the static sample with the same (n, d, seed). Concurrent requests
// for the same key build once — later callers block on the builder's
// shared_future. Overlays are handed out as shared_ptr<const Overlay>, so
// eviction never invalidates a live user.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "graph/small_world.hpp"

namespace byz::bench_core {

class OverlayCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::size_t entries = 0;
  };

  /// `max_bytes` bounds resident overlay memory (0 = unlimited); least
  /// recently used entries are evicted past the bound.
  explicit OverlayCache(std::uint64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Returns the overlay for `params`, building it on a miss. Thread-safe;
  /// a concurrent miss on the same key builds exactly once. Throws
  /// std::invalid_argument when params.generation != 0: a snapshot of an
  /// evolving overlay cannot be re-derived from (n, d, seed) — it must be
  /// published with put().
  [[nodiscard]] std::shared_ptr<const graph::Overlay> get(
      const graph::OverlayParams& params);

  /// Publishes an already-built overlay (e.g. a MutableOverlay epoch
  /// snapshot) under its own params() key. If the key is already resident
  /// the existing entry wins and is returned instead. Throws
  /// std::invalid_argument when params().generation == 0 — static keys are
  /// reserved for overlays get() derives from (n, d, seed).
  std::shared_ptr<const graph::Overlay> put(
      std::shared_ptr<const graph::Overlay> overlay);

  /// Convenience overload for the common (n, d, seed) case (paper k).
  [[nodiscard]] std::shared_ptr<const graph::Overlay> get(graph::NodeId n,
                                                          std::uint32_t d,
                                                          std::uint64_t seed);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Key {
    graph::NodeId n;
    std::uint32_t d;
    std::uint32_t k;
    std::uint64_t seed;
    std::uint64_t generation;  ///< 0 = static sample; else snapshot build tag
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    std::shared_future<std::shared_ptr<const graph::Overlay>> overlay;
    std::list<Key>::iterator lru_pos;
    std::uint64_t bytes = 0;  ///< 0 until the build completes
  };

  void evict_locked(const Key& incoming);

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< front = most recently used
  std::uint64_t max_bytes_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace byz::bench_core
