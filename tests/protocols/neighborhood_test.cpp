#include "protocols/neighborhood.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/categories.hpp"
#include "graph/tree_like.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n = 512, std::uint32_t d = 8, std::uint64_t seed = 61) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(ClaimSet, TruthfulByDefault) {
  const Overlay o = sample(64, 6);
  ClaimSet claims(o);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    EXPECT_TRUE(claims.truthful(v));
    const auto c = claims.claimed(v);
    const auto g = o.g().neighbors(v);
    ASSERT_EQ(c.size(), g.size());
  }
}

TEST(ClaimSet, OverrideSortsAndDedups) {
  const Overlay o = sample(64, 6);
  ClaimSet claims(o);
  claims.set_claim(3, {9, 1, 9, 5});
  const auto c = claims.claimed(3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], 5u);
  EXPECT_EQ(c[2], 9u);
  EXPECT_FALSE(claims.truthful(3));
}

TEST(Conflict, NoneWhenEveryoneTruthful) {
  const Overlay o = sample(128, 6);
  const ClaimSet claims(o);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    EXPECT_FALSE(detects_conflict(claims, v)) << "v=" << v;
  }
}

TEST(Conflict, HiddenEdgeDetectedByWitness) {
  // u hides its edge to w; any common G-neighbor v (and w itself) sees the
  // contradiction with w's truthful claim.
  const Overlay o = sample(128, 6);
  ClaimSet claims(o);
  const NodeId u = 0;
  const auto u_nbrs = o.g().neighbors(u);
  const NodeId w = u_nbrs[0];
  std::vector<NodeId> lie(u_nbrs.begin(), u_nbrs.end());
  lie.erase(std::remove(lie.begin(), lie.end(), w), lie.end());
  claims.set_claim(u, lie);
  EXPECT_TRUE(detects_conflict(claims, w));  // w's own channel is denied
  // A common neighbor also catches it via the pairwise rule.
  for (const NodeId v : o.g().neighbors(u)) {
    if (v != w && o.g().has_edge(v, w)) {
      EXPECT_TRUE(detects_conflict(claims, v));
      break;
    }
  }
}

TEST(Conflict, FabricatedEdgeDetected) {
  // u claims an edge to honest y (another G-neighbor of v) that does not
  // exist; y's truthful claim contradicts it at any v seeing both.
  const Overlay o = sample(128, 6);
  ClaimSet claims(o);
  const NodeId v = 7;
  const auto v_nbrs = o.g().neighbors(v);
  // Find u, y ∈ N(v) that are NOT adjacent in G.
  NodeId u = graph::kInvalidNode;
  NodeId y = graph::kInvalidNode;
  for (std::size_t a = 0; a < v_nbrs.size() && u == graph::kInvalidNode; ++a) {
    for (std::size_t b = 0; b < v_nbrs.size(); ++b) {
      if (a != b && !o.g().has_edge(v_nbrs[a], v_nbrs[b])) {
        u = v_nbrs[a];
        y = v_nbrs[b];
        break;
      }
    }
  }
  ASSERT_NE(u, graph::kInvalidNode) << "need a non-adjacent pair in N(v)";
  const auto u_nbrs = o.g().neighbors(u);
  std::vector<NodeId> lie(u_nbrs.begin(), u_nbrs.end());
  lie.push_back(y);
  claims.set_claim(u, lie);
  EXPECT_TRUE(detects_conflict(claims, v));
}

TEST(Conflict, FabricatedIdOutsideBallNotDetectable) {
  // Claims about ids nobody can see (beyond the k-ball) are unverifiable;
  // adding one must NOT crash anyone (Byzantine nodes "fake the presence
  // of non-existing nodes" — the protocol survives it).
  const Overlay o = sample(128, 6);
  ClaimSet claims(o);
  const NodeId u = 0;
  const auto u_nbrs = o.g().neighbors(u);
  std::vector<NodeId> lie(u_nbrs.begin(), u_nbrs.end());
  lie.push_back(o.num_nodes() + 1000);  // fabricated id
  claims.set_claim(u, lie);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    EXPECT_FALSE(detects_conflict(claims, v));
  }
}

TEST(CrashSet, MatchesReferenceConflictDetection) {
  // The byz-pair shortcut must agree exactly with running the full pairwise
  // rule at every node.
  const Overlay o = sample(256, 6, 67);
  util::Xoshiro256 rng(5);
  const auto byz = graph::random_byzantine_mask(o.num_nodes(), 12, rng);
  ClaimSet claims(o);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (!byz[v]) continue;
    // Arbitrary lie: drop the last claimed neighbor.
    const auto nbrs = o.g().neighbors(v);
    std::vector<NodeId> lie(nbrs.begin(), nbrs.end());
    if (!lie.empty()) lie.pop_back();
    claims.set_claim(v, lie);
  }
  const auto crash = compute_crash_set(claims, byz, nullptr);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (byz[v]) continue;
    EXPECT_EQ(crash[v], detects_conflict(claims, v)) << "v=" << v;
  }
}

TEST(CrashSet, EmptyLieCrashesAllHonestNeighbors) {
  const Overlay o = sample(128, 6, 71);
  std::vector<bool> byz(o.num_nodes(), false);
  byz[10] = true;
  ClaimSet claims(o);
  claims.set_claim(10, {});
  const auto crash = compute_crash_set(claims, byz, nullptr);
  for (const NodeId w : o.g().neighbors(10)) {
    if (!byz[w]) EXPECT_TRUE(crash[w]);
  }
  // Nodes outside N_G(10) never see node 10's claims: no crash.
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (!byz[v] && !o.g().has_edge(10, v)) EXPECT_FALSE(crash[v]);
  }
}

TEST(CrashSet, CountsSetupTraffic) {
  const Overlay o = sample(64, 6, 73);
  const std::vector<bool> byz(o.num_nodes(), false);
  const ClaimSet claims(o);
  sim::Instrumentation instr;
  (void)compute_crash_set(claims, byz, &instr);
  // Every node ships one list per G-edge endpoint.
  EXPECT_EQ(instr.setup_messages, o.g().num_slots());
  EXPECT_GT(instr.setup_bytes, instr.setup_messages * 8);
  EXPECT_EQ(instr.crashes, 0u);
}

TEST(Reconstruction, Lemma3ExactOnTreeLikeNeighborhoods) {
  // Lemma 3's subset criterion recovers the exact H-neighbor set wherever
  // the node is locally tree-like at radius k+1 (shortcuts through depth-
  // (k+1) nodes are what create spurious maximal elements; see DESIGN.md
  // §3.5). At d=4 (k=2) and n=8192 the radius-3 tree-like set is ~93% of
  // nodes, all of which must reconstruct exactly.
  const Overlay o = sample(8192, 4, 79);
  const ClaimSet claims(o);
  const auto ltl =
      graph::classify_tree_like(o.h(), o.params().d, o.k() + 1);
  EXPECT_GT(ltl.count, o.num_nodes() * 8 / 10);
  std::uint32_t checked = 0;
  for (NodeId v = 0; v < o.num_nodes() && checked < 300; ++v) {
    if (!ltl.is_tree_like[v]) continue;
    ++checked;
    const auto rec = reconstruct_neighborhood(claims, v);
    EXPECT_FALSE(rec.conflict);
    const auto truth = o.h_neighbors(v);
    ASSERT_EQ(rec.h_neighbors.size(), truth.size()) << "v=" << v;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(rec.h_neighbors[i], truth[i]);
    }
  }
  EXPECT_GE(checked, 100u);
}

TEST(Reconstruction, MostlyExactEvenBeyondTreeLikeNodes) {
  // Off the tree-like set the reconstruction may add spurious H-neighbors
  // (it stays a superset); overall exactness should still dominate.
  const Overlay o = sample(8192, 4, 81);
  const ClaimSet claims(o);
  std::uint32_t exact = 0;
  const std::uint32_t total = 400;
  for (NodeId v = 0; v < total; ++v) {
    const auto rec = reconstruct_neighborhood(claims, v);
    const auto truth = o.h_neighbors(v);
    if (rec.h_neighbors.size() == truth.size() &&
        std::equal(truth.begin(), truth.end(), rec.h_neighbors.begin())) {
      ++exact;
    } else {
      // Failure mode is always over-inclusion, never a missing neighbor.
      EXPECT_TRUE(std::includes(rec.h_neighbors.begin(),
                                rec.h_neighbors.end(), truth.begin(),
                                truth.end()))
          << "v=" << v;
    }
  }
  EXPECT_GT(exact, total * 8 / 10);
}

TEST(Reconstruction, ConflictShortCircuits) {
  const Overlay o = sample(64, 6, 83);
  ClaimSet claims(o);
  claims.set_claim(0, {});
  const NodeId victim = o.g().neighbors(0)[0];
  const auto rec = reconstruct_neighborhood(claims, victim);
  EXPECT_TRUE(rec.conflict);
  EXPECT_TRUE(rec.h_neighbors.empty());
}

}  // namespace
}  // namespace byz::proto
