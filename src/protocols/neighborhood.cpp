#include "protocols/neighborhood.hpp"

#include <algorithm>
#include <stdexcept>

namespace byz::proto {

using graph::NodeId;

void ClaimSet::set_claim(NodeId u, std::vector<NodeId> claimed) {
  std::sort(claimed.begin(), claimed.end());
  claimed.erase(std::unique(claimed.begin(), claimed.end()), claimed.end());
  overrides_[u] = std::move(claimed);
}

std::span<const NodeId> ClaimSet::claimed(NodeId u) const {
  if (overrides_[u]) return *overrides_[u];
  return overlay_->g().neighbors(u);
}

namespace {

/// Membership test in a sorted claim list.
bool claims_edge(const ClaimSet& claims, NodeId u, NodeId w) {
  const auto list = claims.claimed(u);
  return std::binary_search(list.begin(), list.end(), w);
}

}  // namespace

bool detects_conflict(const ClaimSet& claims, NodeId v) {
  const auto& g = claims.overlay().g();
  const auto nbrs = g.neighbors(v);
  for (std::size_t a = 0; a < nbrs.size(); ++a) {
    // A neighbor denying the very channel v holds to it is a contradiction
    // v can observe directly (ids cannot be faked on channels, §2.1).
    if (!claims_edge(claims, nbrs[a], v)) return true;
    for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
      const NodeId u = nbrs[a];
      const NodeId w = nbrs[b];
      if (claims_edge(claims, u, w) != claims_edge(claims, w, u)) return true;
    }
  }
  return false;
}

std::vector<bool> compute_crash_set(const ClaimSet& claims,
                                    const std::vector<bool>& byz_mask,
                                    sim::Instrumentation* instr) {
  const auto& overlay = claims.overlay();
  const auto& g = overlay.g();
  const NodeId n = g.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("compute_crash_set: mask size mismatch");
  }
  std::vector<bool> crashed(n, false);

  if (instr != nullptr) {
    // Every node ships its claimed list to each G-neighbor once.
    for (NodeId u = 0; u < n; ++u) {
      const auto len = claims.claimed(u).size();
      for (std::uint64_t e = 0; e < g.degree(u); ++e) {
        instr->count_setup_list(len);
      }
    }
  }

  // Honest claims are truthful, hence pairwise consistent: only pairs with
  // at least one Byzantine (or otherwise lying) member can conflict.
  for (NodeId v = 0; v < n; ++v) {
    if (byz_mask[v]) continue;
    const auto nbrs = g.neighbors(v);
    bool conflict = false;
    for (std::size_t a = 0; a < nbrs.size() && !conflict; ++a) {
      const NodeId u = nbrs[a];
      if (!byz_mask[u] && claims.truthful(u)) continue;
      if (!claims_edge(claims, u, v)) {  // denies the direct channel
        conflict = true;
        break;
      }
      for (std::size_t b = 0; b < nbrs.size() && !conflict; ++b) {
        const NodeId w = nbrs[b];
        if (w == u) continue;
        if (claims_edge(claims, u, w) != claims_edge(claims, w, u)) {
          conflict = true;
        }
      }
    }
    crashed[v] = conflict;
    if (conflict && instr != nullptr) ++instr->crashes;
  }
  return crashed;
}

Reconstruction reconstruct_neighborhood(const ClaimSet& claims, NodeId v) {
  Reconstruction rec;
  rec.conflict = detects_conflict(claims, v);
  if (rec.conflict) return rec;

  const auto& g = claims.overlay().g();
  const auto nbrs = g.neighbors(v);
  const std::size_t deg = nbrs.size();

  // Bitset rows: I_u = N_G[u] ∩ N_G(v) with CLOSED neighborhoods (u ∈ N[u]),
  // indexed by position in nbrs. Closure is what makes the Lemma-3 subset
  // order work: a child's intersection contains its parent, so the parent
  // must appear in its own set for the containment to be strict.
  const std::size_t words = (deg + 63) / 64;
  std::vector<std::uint64_t> rows(deg * words, 0);
  for (std::size_t a = 0; a < deg; ++a) {
    rows[a * words + a / 64] |= (1ULL << (a % 64));  // self (closure)
    const auto list = claims.claimed(nbrs[a]);
    // Walk the two sorted sequences in tandem.
    std::size_t bi = 0;
    for (const NodeId w : list) {
      while (bi < deg && nbrs[bi] < w) ++bi;
      if (bi == deg) break;
      if (nbrs[bi] == w) {
        rows[a * words + bi / 64] |= (1ULL << (bi % 64));
      }
    }
  }

  auto strict_subset = [&](std::size_t a, std::size_t b) {
    // I_a ⊂ I_b (strict)?
    bool equal = true;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t ra = rows[a * words + w];
      const std::uint64_t rb = rows[b * words + w];
      if ((ra & ~rb) != 0) return false;  // something in a not in b
      if (ra != rb) equal = false;
    }
    return !equal;
  };

  // H-neighbors = maximal elements of the intersection order.
  for (std::size_t a = 0; a < deg; ++a) {
    bool maximal = true;
    for (std::size_t b = 0; b < deg && maximal; ++b) {
      if (b != a && strict_subset(a, b)) maximal = false;
    }
    if (maximal) rec.h_neighbors.push_back(nbrs[a]);
  }
  return rec;
}

}  // namespace byz::proto
