// Paper-style ASCII table printer. Every bench binary emits its results
// through this so the output reads like the table/figure it reproduces.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace byz::util {

/// Column-aligned table with a title, header row, and typed cell helpers.
/// Cells are stored as strings; numeric helpers format consistently.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; must be called before any data row.
  Table& columns(std::vector<std::string> names);

  /// Starts a new data row.
  Table& row();

  /// Appends one cell to the current row.
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(unsigned value);

  /// Appends a full-width annotation line rendered under the table body.
  Table& note(std::string text);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Structured accessors (the bench JSON emitter serializes tables).
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }
  [[nodiscard]] const std::vector<std::string>& notes() const noexcept {
    return notes_;
  }

  /// Renders the aligned table.
  [[nodiscard]] std::string str() const;
  /// Renders as GitHub-flavoured markdown (for EXPERIMENTS.md capture).
  [[nodiscard]] std::string markdown() const;
  /// Renders as CSV (header + rows, no title).
  [[nodiscard]] std::string csv() const;

  /// Convenience: str() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// Formats a double with fixed precision (shared by Table and CSV code).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace byz::util
