// E7 — Message accounting ("small-sized messages", §2.1): per-node
// per-round fan-out is bounded by the constant d, payloads are O(1) ids +
// O(log n) bits, and the message-level engine's per-round volumes confirm
// the fast path's aggregate accounting (the equivalence suite asserts exact
// equality; here we show the magnitudes).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  {
    util::Table table("E7a: message-level engine accounting (d=6, fake-color)");
    table.columns({"n", "tokens", "token bytes", "verify msgs", "setup msgs",
                   "peak msgs/round", "max node fan-out", "bytes/node/round"});
    for (const auto n : analysis::pow2_sizes(8, 11)) {
      const auto overlay = make_overlay(n, 6, 0xE7 + n);
      const auto byz = place_byz(n, 0.7, 0xE7 + n);
      const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
      proto::ProtocolConfig cfg;
      sim::Engine engine(overlay, byz, *strat, cfg, 0xC7);
      const auto run = engine.run();
      std::uint64_t peak = 0;
      for (const auto m : engine.round_messages()) peak = std::max(peak, m);
      const double bytes_node_round =
          static_cast<double>(run.instr.total_bytes()) /
          (static_cast<double>(n) * static_cast<double>(run.flood_rounds));
      table.row()
          .cell(std::uint64_t{n})
          .cell(run.instr.token_messages)
          .cell(run.instr.token_bytes)
          .cell(run.instr.verify_messages)
          .cell(run.instr.setup_messages)
          .cell(peak)
          .cell(run.instr.max_node_round_sends)
          .cell(bytes_node_round, 1);
    }
    table.note("Max per-node fan-out equals the H-degree d: messages are "
               "'small-sized' (constant ids + O(log n) bits) and per-round "
               "load is constant per node.");
    analysis::emit(table);
  }
  {
    const auto max_exp = analysis::env_max_exp(15);
    util::Table table("E7b: fast-path aggregate accounting at scale (d=8)");
    table.columns({"n", "tokens", "verify msgs", "verify/token ratio",
                   "total MB", "rounds"});
    for (const auto n : analysis::pow2_sizes(12, max_exp)) {
      const auto overlay = make_overlay(n, 8, 0xE7B + n);
      const auto byz = place_byz(n, 0.5, 0xE7B + n);
      const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(overlay, byz, *strat, cfg, 0xC7);
      table.row()
          .cell(std::uint64_t{n})
          .cell(run.instr.token_messages)
          .cell(run.instr.verify_messages)
          .cell(static_cast<double>(run.instr.verify_messages) /
                    static_cast<double>(run.instr.token_messages),
                1)
          .cell(static_cast<double>(run.instr.total_bytes()) / 1e6, 1)
          .cell(run.flood_rounds);
    }
    table.note("Verification costs a constant factor over the flood "
               "(2|B(w,k-1)| round trips per received token, k and d "
               "constants).");
    analysis::emit(table);
  }
  return 0;
}
