#include "protocols/fastpath.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/color.hpp"
#include "protocols/flooding.hpp"
#include "protocols/neighborhood.hpp"
#include "sim/world.hpp"
#include "util/log.hpp"

namespace byz::proto {

using graph::NodeId;

std::uint32_t resolve_max_phase(const graph::Overlay& overlay,
                                const ProtocolConfig& cfg) {
  if (cfg.max_phase != 0) return cfg.max_phase;
  const double n = overlay.num_nodes();
  const double d = overlay.params().d;
  return static_cast<std::uint32_t>(
             std::ceil(4.0 * std::log2(n) / std::log2(d - 1.0))) +
         8;
}

RunResult run_counting(const graph::Overlay& overlay,
                       const std::vector<bool>& byz_mask,
                       adv::Strategy& strategy, const ProtocolConfig& cfg,
                       std::uint64_t color_seed) {
  return run_counting_with(overlay, byz_mask, strategy, cfg, color_seed, {});
}

RunResult run_counting_with(const graph::Overlay& overlay,
                            const std::vector<bool>& byz_mask,
                            adv::Strategy& strategy, const ProtocolConfig& cfg,
                            std::uint64_t color_seed,
                            const RunControls& controls) {
  const NodeId n = overlay.num_nodes();
  if (controls.start_phase == 0) {
    throw std::invalid_argument(
        "run_counting: start_phase is 1-based (1 = no skip)");
  }
  MidRunHooks* const midrun = controls.midrun;
  if (midrun != nullptr &&
      (controls.lazy_subphases || controls.verifier != nullptr)) {
    throw std::invalid_argument(
        "run_counting: midrun hooks are incompatible with lazy_subphases "
        "(skipped subphases would shift the churn-schedule clock) and an "
        "external verifier (begin_phase owns the verifier)");
  }
  // The run's id space: the snapshot's nodes plus, under mid-run churn,
  // every joiner the round schedule will ever admit (inert until then).
  const NodeId nb = midrun ? midrun->node_bound() : n;
  if (nb < n || byz_mask.size() != nb) {
    throw std::invalid_argument("run_counting: mask size mismatch");
  }
  const std::uint32_t d = overlay.params().d;

  // Observability spans (pure read-side; see src/obs/obs.hpp). The run
  // span encloses setup and every phase; phase/subphase spans nest inside
  // it, and the flood kernel adds flood.subphase/flood.round below them.
  static const obs::Counter obs_subphases("count.subphases");
  static const obs::Counter obs_straggler_floods("count.straggler_floods");
  obs::Span run_span("count.run");
  run_span.arg("n", n).arg("start_phase", controls.start_phase);

  RunResult result;
  result.status.assign(nb, NodeStatus::kUndecided);
  result.estimate.assign(nb, 0);

  const sim::World world = sim::World::make(overlay, byz_mask, color_seed);
  for (const NodeId b : world.byz_nodes) {
    result.status[b] = NodeStatus::kByzantine;
  }
  // Scheduled sybil joiners (ids past the snapshot) are Byzantine from the
  // start for bookkeeping; the World above only spans the snapshot, so the
  // strategy never plans injections from them this run.
  for (NodeId v = n; v < nb; ++v) {
    if (byz_mask[v]) result.status[v] = NodeStatus::kByzantine;
  }

  // Setup: adjacency exchange, lies, crash rule (Algorithm 2 lines 1-2).
  // Mid-run joiners skip setup: they were not present for the adjacency
  // exchange, so the crash rule never applies to them.
  proto::ClaimSet claims(overlay);
  strategy.setup_lies(world, claims);
  std::vector<bool> crashed(nb, false);
  if (cfg.crash_rule) {
    if (midrun == nullptr) {
      crashed = compute_crash_set(claims, byz_mask, &result.instr);
    } else {
      // The crash rule runs on the snapshot's members only; joiner ids are
      // truncated off the mask (they exchanged no adjacency claims).
      const std::vector<bool> snapshot_byz(byz_mask.begin(),
                                           byz_mask.begin() + n);
      crashed = compute_crash_set(claims, snapshot_byz, &result.instr);
    }
    crashed.resize(nb, false);
    for (NodeId v = 0; v < n; ++v) {
      if (crashed[v] && !byz_mask[v]) result.status[v] = NodeStatus::kCrashed;
    }
  }

  const Verifier* verifier = controls.verifier;
  std::optional<Verifier> owned_verifier;
  const FloodExec flood_exec = resolve_flood_exec(controls.flood);
  if (verifier == nullptr && midrun == nullptr) {
    // A parallel run batches the verifier's row precompute with the same
    // worker count (0 = hardware; the table is identical either way — each
    // row is a pure function of the overlay).
    owned_verifier.emplace(
        overlay, byz_mask, cfg.verification,
        flood_exec.mode == FloodMode::kParallel ? flood_exec.threads : 1);
    verifier = &*owned_verifier;
  }
  const std::uint32_t max_phase = resolve_max_phase(overlay, cfg);
  const bool byz_gen = strategy.generates_honestly();

  // active = honest, uncrashed, undecided (still generates tokens). Under
  // mid-run churn, joiners enter this set only when a phase boundary
  // admits them (kReadmitNextPhase); `participates` gates generation for
  // both honest and Byzantine joiners until then.
  std::vector<bool> active(nb, false);
  std::uint64_t active_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!byz_mask[v] && !crashed[v]) {
      active[v] = true;
      ++active_count;
    }
  }
  std::vector<std::uint8_t> participates;
  std::vector<NodeId> admitted;
  if (midrun != nullptr) {
    participates.assign(nb, 0);
    std::fill(participates.begin(), participates.begin() + n, 1);
  }

  FloodWorkspace ws;
  std::vector<Color> gen(nb, 0);
  std::vector<Injection> injections;
  std::vector<bool> fired(nb, false);
  // Lazy-tier scratch: the not-yet-fired stragglers of the current phase
  // and the region mask of their radius-`phase` balls.
  std::vector<NodeId> unfired_list;
  std::vector<std::uint8_t> region;
  std::vector<NodeId> region_frontier;
  std::vector<NodeId> region_next;
  // Global flood-round counter driving the mid-run churn schedule. An
  // ε-warm entry above phase 1 pre-advances it past the skipped prefix so
  // the schedule's event→round mapping is preserved: events the run was
  // not looking at burst-apply at the entry phase's first begin_round.
  std::uint64_t global_round =
      controls.start_phase > 1
          ? rounds_through_phase(controls.start_phase - 1, d, cfg.schedule)
          : 0;

  obs::RunDigester* const dg = controls.digester;
  std::uint32_t phase = controls.start_phase - 1;
  while (phase < max_phase && active_count > 0) {
    ++phase;
    obs::Span phase_span("count.phase");
    phase_span.arg("phase", phase).arg("active_in", active_count);
    if (midrun != nullptr) {
      // Phase boundary: the membership policy admits pending joiners (they
      // start generating this phase) and hands back the Verifier the
      // phase's floods must use (refreshed under kReadmitNextPhase).
      verifier = admit_at_phase_boundary(*midrun, phase, byz_mask, crashed,
                                         result.status, participates, active,
                                         active_count, admitted);
    }
    if (dg != nullptr) {
      dg->begin_phase(phase);
      dg->note(obs::FlightEventKind::kPhaseBegin, active_count,
               admitted.size());
      digest_phase_state(*dg, *verifier, result.status, result.estimate, nb);
    }
    const std::uint32_t subphases = subphases_in_phase(phase, d, cfg.schedule);
    std::fill(fired.begin(), fired.end(), false);
    const double threshold = continue_threshold(phase, d);
    result.subphases_scheduled += subphases;

    for (std::uint32_t j = 1; j <= subphases; ++j) {
      obs::Span sub_span("count.subphase");
      sub_span.arg("phase", phase).arg("j", j);
      obs_subphases.add(1);
      bool focused = false;
      const std::uint32_t s =
          global_subphase_index(phase, j, d, cfg.schedule);
      // Colors: active honest nodes generate; decided/crashed do not;
      // Byzantine nodes generate their honest draw only if the strategy
      // mimics the protocol. Mid-run joiners generate only once admitted.
      for (NodeId v = 0; v < nb; ++v) {
        if ((active[v] || (byz_mask[v] && byz_gen)) &&
            (midrun == nullptr || participates[v] != 0)) {
          gen[v] = color_at(color_seed, v, s);
        } else {
          gen[v] = 0;
        }
      }
      injections.clear();
      strategy.plan_subphase(world, {phase, j, s}, injections);

      // Lazy evaluation, stage 2: only the stragglers that have not fired
      // yet can still influence this phase's decisions, and a node's flood
      // values are a function of its radius-`phase` ball alone — so once
      // the stragglers are a minority, flood only the induced subgraph on
      // the union of their balls. Values are exact exactly at the
      // stragglers, which are the only nodes the fired-update below still
      // reads.
      if (controls.lazy_subphases && j > 1 &&
          unfired_list.size() < active_count) {
        region.assign(n, 0);
        region_frontier.clear();
        NodeId region_count = 0;
        for (const NodeId v : unfired_list) {
          region[v] = 1;
          region_frontier.push_back(v);
          ++region_count;
        }
        const auto& hs = overlay.h_simple();
        focused = true;
        for (std::uint32_t depth = 0;
             depth < phase && !region_frontier.empty(); ++depth) {
          region_next.clear();
          for (const NodeId u : region_frontier) {
            for (const NodeId w : hs.neighbors(u)) {
              if (region[w] == 0) {
                region[w] = 1;
                region_next.push_back(w);
                ++region_count;
              }
            }
          }
          // The balls merged into most of the network: the focused flood
          // would cost the same as the full one, so skip the masking.
          if (region_count * 4 > static_cast<NodeId>(n) * 3) {
            focused = false;
            break;
          }
          region_frontier.swap(region_next);
        }
      }

      FloodParams params;
      params.steps = phase;
      params.byz_forward = strategy.forwards_floods();
      params.exec = flood_exec;
      if (focused) params.region = region;
      if (midrun != nullptr) {
        params.live = midrun;
        params.clock = {phase, j, 1, global_round};
      }
      if (dg != nullptr) {
        dg->begin_subphase(j);
        params.digest = dg;
      }
      run_flood_subphase(overlay, byz_mask, crashed, *verifier, params, gen,
                         injections, ws, result.instr);
      global_round += phase;
      ++result.subphases_executed;
      sub_span.arg("focused", focused ? 1 : 0);
      if (focused) {
        obs_straggler_floods.add(1);
        if (dg != nullptr) {
          dg->note(obs::FlightEventKind::kStragglerFlood, unfired_list.size(),
                   phase);
        }
      }

      // Line 18: the phase "continues" for v if the final-step max strictly
      // beats every earlier step AND clears the threshold, in ANY subphase.
      // (Already-fired nodes are skipped, so focused subphases only read
      // the straggler values the region guarantees exact.)
      unfired_list.clear();
      for (NodeId v = 0; v < nb; ++v) {
        if (!active[v] || fired[v]) continue;
        const Color ki = ws.last_step[v];
        if (ki > ws.best_before[v] &&
            static_cast<double>(ki) > threshold) {
          fired[v] = true;
        } else {
          unfired_list.push_back(v);
        }
      }
      sub_span.arg("unfired", unfired_list.size());
      if (dg != nullptr) {
        for (NodeId v = 0; v < nb; ++v) {
          if (fired[v]) dg->fold_subphase(obs::digest_state_term(v, 1));
        }
        dg->close_subphase();
      }
      // Lazy evaluation, stage 1: once every active node has fired, the
      // remaining subphases cannot change any decision (fired is monotone
      // and the only cross-subphase state) — to the cold tier they are
      // pure message cost.
      if (controls.lazy_subphases && unfired_list.empty()) break;
    }

    // Mid-run churn: nodes that left the overlay during this phase are no
    // longer members — they take no estimate and leave the active set
    // before the decide sweep reads the fired flags.
    if (midrun != nullptr) {
      sweep_departed(*midrun, active, active_count, result, dg);
    }

    // Nodes with FlagTerminate still set accept i as the estimate of log n.
    std::uint64_t decided_now = 0;
    for (NodeId v = 0; v < nb; ++v) {
      if (active[v] && !fired[v]) {
        active[v] = false;
        --active_count;
        result.status[v] = NodeStatus::kDecided;
        result.estimate[v] = phase;
        ++decided_now;
        if (dg != nullptr) dg->fold_phase(obs::digest_state_term(v, phase));
      }
    }
    if (dg != nullptr) {
      dg->fold_phase(obs::mix2(decided_now, active_count));
      dg->close_phase();
    }
    BYZ_TRACE << "phase " << phase << ": " << subphases << " subphases, "
              << decided_now << " nodes decided (estimate=" << phase << "), "
              << active_count << " still active";
    phase_span.arg("decided", decided_now).arg("active_out", active_count);
  }
  result.phases_executed = phase;
  result.flood_rounds = result.instr.flood_rounds;
  if (dg != nullptr) {
    fold_run_outcome(*dg, result, nb);
  }
  run_span.arg("phases", phase).arg("rounds", result.instr.flood_rounds);
  return result;
}

RunResult run_basic_counting(const graph::Overlay& overlay,
                             std::uint64_t color_seed, ScheduleConfig sched) {
  std::vector<bool> byz(overlay.num_nodes(), false);
  auto strategy = adv::make_strategy(adv::StrategyKind::kHonest);
  return run_counting(overlay, byz, *strategy, basic_config(sched), color_seed);
}

}  // namespace byz::proto
