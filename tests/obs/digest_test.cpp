#include "obs/digest.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_core/json.hpp"
#include "obs/recorder.hpp"

namespace byz::obs {
namespace {

TEST(DigestMix, Mix64IsDeterministicAndAvalanches) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // A one-bit input flip must move many output bits (sanity, not a proof).
  const std::uint64_t diff = mix64(42) ^ mix64(42 ^ 1ull);
  int bits = 0;
  for (std::uint64_t d = diff; d != 0; d &= d - 1) ++bits;
  EXPECT_GE(bits, 16);
}

TEST(DigestMix, TaggedTermsNeverCollideAcrossRoles) {
  // The same (node, value) pair must digest differently per role so a
  // sender term can never cancel a receiver term under the XOR fold.
  const std::uint64_t s = digest_sender_term(7, 99);
  const std::uint64_t r = digest_receiver_term(7, 99);
  const std::uint64_t m = digest_member_term(7, 99);
  const std::uint64_t st = digest_state_term(7, 99);
  EXPECT_NE(s, r);
  EXPECT_NE(s, m);
  EXPECT_NE(s, st);
  EXPECT_NE(r, m);
  EXPECT_NE(r, st);
  EXPECT_NE(m, st);
}

TEST(DigestMix, HexFormatsFixedWidth) {
  EXPECT_EQ(hex_u64(0), "0x0000000000000000");
  EXPECT_EQ(hex_u64(0xDEADBEEFull), "0x00000000deadbeef");
  EXPECT_EQ(hex_u64(~std::uint64_t{0}), "0xffffffffffffffff");
}

DigestTrail make_trail(std::uint64_t round_salt) {
  // Two phases; phase p has p subphases of p rounds each — the paper's
  // schedule shape in miniature. `round_salt` perturbs exactly one round
  // digest (global round index 2) when nonzero.
  DigestTrail t;
  std::uint64_t round = 0;
  for (std::uint32_t p = 1; p <= 2; ++p) {
    for (std::uint32_t j = 0; j < p; ++j) {
      for (std::uint32_t s = 0; s < p; ++s) {
        std::uint64_t d = mix2(mix2(p, j), round);
        if (round == 2 && round_salt != 0) d ^= round_salt;
        t.rounds.push_back({p, j, round, d});
        ++round;
      }
      t.subphases.push_back({p, j, mix2(p, j)});
    }
    t.phases.push_back({p, mix64(p)});
  }
  t.run_digest = mix64(0xABC);
  t.closed = true;
  return t;
}

TEST(DigestDivergenceWalk, IdenticalTrailsReportNone) {
  const DigestTrail a = make_trail(0);
  const DigestDivergence div = first_divergence(a, a);
  EXPECT_FALSE(div.diverged());
  EXPECT_EQ(div.level, DigestDivergence::Level::kNone);
}

TEST(DigestDivergenceWalk, LocalizesSingleDivergentRound) {
  DigestTrail a = make_trail(0);
  DigestTrail b = make_trail(0x1234);
  // The round fold feeds the enclosing levels in a real run; emulate that
  // so the walk can drill phase -> subphase -> round.
  b.subphases[1].digest ^= 1;  // global round 2 lives in phase 2 subphase 0
  b.phases[1].digest ^= 1;
  b.run_digest ^= 1;
  const DigestDivergence div = first_divergence(a, b);
  ASSERT_TRUE(div.diverged());
  EXPECT_EQ(div.level, DigestDivergence::Level::kRound);
  EXPECT_EQ(div.phase, 2u);
  EXPECT_EQ(div.subphase, 0u);
  EXPECT_EQ(div.round, 2u);
}

TEST(DigestDivergenceWalk, TruncatedTrailDivergesAtFirstMissingPhase) {
  const DigestTrail a = make_trail(0);
  DigestTrail b = a;
  b.phases.pop_back();
  const DigestDivergence div = first_divergence(a, b);
  ASSERT_TRUE(div.diverged());
  EXPECT_EQ(div.level, DigestDivergence::Level::kPhase);
  EXPECT_EQ(div.phase, 2u);
}

TEST(DigestDivergenceWalk, RunOnlyDifferenceReportsRunLevel) {
  const DigestTrail a = make_trail(0);
  DigestTrail b = a;
  b.run_digest ^= 0xFF;
  const DigestDivergence div = first_divergence(a, b);
  ASSERT_TRUE(div.diverged());
  EXPECT_EQ(div.level, DigestDivergence::Level::kRun);
}

TEST(FlightRecorderRing, KeepsNewestEventsBounded) {
  FlightRecorder rec(4);
#if BYZ_OBS_ENABLED
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record({FlightEventKind::kNote, 1, 0, i, i, 0});
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  const auto tail = rec.tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().a, 6u);  // oldest surviving
  EXPECT_EQ(tail.back().a, 9u);   // newest
#else
  rec.record({FlightEventKind::kNote, 1, 0, 0, 0, 0});
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.tail().empty());
#endif
}

/// Drives a digester through a deterministic synthetic schedule (the same
/// shape as make_trail), with one node-term fold per round.
void drive(RunDigester& dg) {
  for (std::uint32_t p = 1; p <= 2; ++p) {
    dg.begin_phase(p);
    dg.fold_phase(digest_state_term(0, p));
    for (std::uint32_t j = 0; j < p; ++j) {
      dg.begin_subphase(j);
      for (std::uint32_t s = 0; s < p; ++s) {
        dg.fold_round(digest_sender_term(s, p));
        dg.fold_round(digest_receiver_term(s + 1, p));
        dg.close_round(/*tokens=*/p * 3);
      }
      dg.fold_subphase(digest_state_term(j, 1));
      dg.close_subphase();
    }
    dg.close_phase();
  }
  dg.fold_run(digest_state_term(0, 7));
  dg.close_run();
}

#if BYZ_OBS_ENABLED

TEST(RunDigesterTrail, SameSequenceFoldsIdenticalTrails) {
  RunDigester a;
  RunDigester b;
  drive(a);
  drive(b);
  ASSERT_TRUE(a.trail().closed);
  EXPECT_EQ(a.trail().rounds.size(), 5u);     // 1*1 + 2*2
  EXPECT_EQ(a.trail().subphases.size(), 3u);  // 1 + 2
  EXPECT_EQ(a.trail().phases.size(), 2u);
  EXPECT_FALSE(first_divergence(a.trail(), b.trail()).diverged());
  EXPECT_EQ(a.trail().run_digest, b.trail().run_digest);
}

TEST(RunDigesterTrail, FoldOrderInsideARoundIsCommutative) {
  // The two tiers visit the close set in different orders; the round fold
  // must not care.
  RunDigester a;
  RunDigester b;
  a.begin_phase(1);
  a.begin_subphase(0);
  a.fold_round(digest_sender_term(1, 5));
  a.fold_round(digest_receiver_term(2, 5));
  a.close_round(3);
  b.begin_phase(1);
  b.begin_subphase(0);
  b.fold_round(digest_receiver_term(2, 5));
  b.fold_round(digest_sender_term(1, 5));
  b.close_round(3);
  EXPECT_EQ(a.trail().rounds[0].digest, b.trail().rounds[0].digest);
}

TEST(RunDigesterTrail, AnySingleEventPerturbationChangesEveryLevelAbove) {
  // Property: flipping any one per-round event flips that round's digest,
  // its subphase, its phase, and the run digest — no fold absorbs it.
  RunDigester base;
  drive(base);
  const std::size_t rounds = base.trail().rounds.size();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    RunDigester perturbed;
    perturbed.set_perturbation(r, 0x5EED);
    drive(perturbed);
    const DigestDivergence div =
        first_divergence(base.trail(), perturbed.trail());
    ASSERT_TRUE(div.diverged()) << "round " << r;
    EXPECT_EQ(div.level, DigestDivergence::Level::kRound) << "round " << r;
    EXPECT_EQ(div.round, r);
    EXPECT_EQ(div.phase, base.trail().rounds[r].phase);
    EXPECT_EQ(div.subphase, base.trail().rounds[r].subphase);
    EXPECT_NE(base.trail().run_digest, perturbed.trail().run_digest)
        << "round " << r;
  }
}

TEST(RunDigesterTrail, RecorderStampsRoundCloseWithHierarchicalClock) {
  FlightRecorder rec;
  RunDigester dg;
  dg.attach_recorder(&rec);
  drive(dg);
  const auto tail = rec.tail();
  ASSERT_EQ(tail.size(), 5u);  // one kRoundClose per round
  EXPECT_EQ(tail.front().kind, FlightEventKind::kRoundClose);
  EXPECT_EQ(tail.front().phase, 1u);
  EXPECT_EQ(tail.front().round, 0u);
  EXPECT_EQ(tail.back().phase, 2u);
  EXPECT_EQ(tail.back().round, 4u);
  EXPECT_EQ(tail.back().b, dg.trail().rounds.back().digest);
}

TEST(ForensicsReport, JsonParsesAndNamesTheDivergentRound) {
  FlightRecorder rec_a;
  FlightRecorder rec_b;
  RunDigester a;
  RunDigester b;
  a.attach_recorder(&rec_a);
  b.attach_recorder(&rec_b);
  b.set_perturbation(3, 0xBAD);
  drive(a);
  drive(b);
  ForensicsInfo info;
  info.scenario = "digest_test";
  info.seed = 77;
  info.flags = "--unit-test";
  info.detail = "digest trails diverged (outcomes identical)";
  const std::string doc_text =
      forensics_json(info, a.trail(), b.trail(), &rec_a, &rec_b);
  const auto doc = bench_core::Json::parse(doc_text);
  ASSERT_TRUE(doc.has_value()) << doc_text;
  EXPECT_EQ(doc->find("schema")->as_string(), "byzobs/forensics/v1");
  EXPECT_EQ(doc->find("scenario")->as_string(), "digest_test");
  const bench_core::Json* div = doc->find("first_divergence");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->find("level")->as_string(), "round");
  EXPECT_EQ(div->find("round")->as_number(), 3.0);
  EXPECT_EQ(div->find("phase")->as_number(),
            static_cast<double>(a.trail().rounds[3].phase));
  const bench_core::Json* tiers = doc->find("tiers");
  ASSERT_NE(tiers, nullptr);
  ASSERT_EQ(tiers->elements().size(), 2u);
  for (const auto& tier : tiers->elements()) {
    EXPECT_NE(tier.find("flight_tail"), nullptr);
    EXPECT_FALSE(tier.find("run_digest")->as_string().empty());
  }
}

#else  // !BYZ_OBS_ENABLED

TEST(RunDigesterStub, EverythingIsANoOp) {
  RunDigester dg;
  drive(dg);
  EXPECT_TRUE(dg.trail().rounds.empty());
  EXPECT_TRUE(dg.trail().phases.empty());
  EXPECT_EQ(dg.trail().run_digest, 0u);
  EXPECT_FALSE(first_divergence(dg.trail(), dg.trail()).diverged());
}

TEST(ForensicsReportStub, JsonStillParses) {
  ForensicsInfo info;
  info.scenario = "stub";
  const RunDigester dg;
  const std::string doc_text =
      forensics_json(info, dg.trail(), dg.trail(), nullptr, nullptr);
  const auto doc = bench_core::Json::parse(doc_text);
  ASSERT_TRUE(doc.has_value()) << doc_text;
  EXPECT_EQ(doc->find("schema")->as_string(), "byzobs/forensics/v1");
}

#endif  // BYZ_OBS_ENABLED

}  // namespace
}  // namespace byz::obs
