#!/usr/bin/env python3
"""Fail CI when an intra-repo markdown link is broken.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Checks two classes of references in each given markdown file:
  * inline links  [text](target)  whose target is not a URL or a pure
    in-page anchor: the referenced path (resolved relative to the file,
    any #fragment stripped) must exist in the working tree;
  * backtick path mentions like `src/dynamics/midrun.hpp` or
    `docs/ARCHITECTURE.md` — single-token code spans that look like repo
    paths (contain a '/' and end in a known source/doc extension, with a
    trailing ".*"/"*" glob meaning "this basename prefix exists"). These
    are how the repo's prose cites code, so they rot just like links.

External URLs (http/https/mailto) are out of scope — this guard is about
the repo staying self-consistent, not the internet staying up.
"""

import glob
import os
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\s]+)`")
PATH_EXTS = (".md", ".hpp", ".cpp", ".py", ".yml", ".txt", ".json")


def candidate_paths(doc_path, target):
    """Paths (relative to the doc, then the repo root) a target may mean."""
    target = target.split("#", 1)[0]
    if not target:
        return []
    rel = os.path.normpath(os.path.join(os.path.dirname(doc_path), target))
    root = os.path.normpath(target)
    return [rel] if rel == root else [rel, root]


def span_is_pathlike(span):
    if "/" not in span or span.startswith(("http://", "https://")):
        return False
    if span.endswith((".*", "*")):
        return span.rstrip("*").rstrip(".").endswith("/") is False
    return span.endswith(PATH_EXTS)


def check_file(doc_path):
    errors = []
    text = open(doc_path, encoding="utf-8").read()

    for match in INLINE_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        if not any(os.path.exists(p) for p in candidate_paths(doc_path, target)):
            errors.append(f"{doc_path}: broken link target '{target}'")

    for match in CODE_SPAN.finditer(text):
        span = match.group(1)
        if not span_is_pathlike(span):
            continue
        if span.endswith(("*", ".*")):
            stem = span.rstrip("*").rstrip(".")
            hits = glob.glob(stem + "*") or glob.glob(
                os.path.join(os.path.dirname(doc_path), stem + "*"))
            if not hits:
                errors.append(f"{doc_path}: no files match cited glob '{span}'")
        elif not any(os.path.exists(p)
                     for p in candidate_paths(doc_path, span)):
            errors.append(f"{doc_path}: cited path '{span}' does not exist")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    all_errors = []
    for doc in argv[1:]:
        if not os.path.exists(doc):
            all_errors.append(f"document not found: {doc}")
            continue
        all_errors.extend(check_file(doc))
    for err in all_errors:
        print(f"ERROR: {err}")
    if not all_errors:
        print(f"ok: {len(argv) - 1} documents, all intra-repo references "
              "resolve")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
