#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace byz::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> sample) { return percentile(sample, 0.5); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bucket) const {
  return counts_.at(bucket);
}

double Histogram::bucket_lo(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << '[';
    out.precision(3);
    out << bucket_lo(b) << ", " << bucket_hi(b) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("linear_fit: need >= 2 paired points");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double chi_squared(std::span<const double> observed,
                   std::span<const double> expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("chi_squared: size mismatch");
  }
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;  // skip empty expected cells
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

Interval bootstrap_mean_ci(std::span<const double> sample, double confidence,
                           int resamples, std::uint64_t seed) {
  if (sample.empty()) throw std::invalid_argument("bootstrap: empty sample");
  Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      sum += sample[rng.below(sample.size())];
    }
    means.push_back(sum / static_cast<double>(sample.size()));
  }
  const double alpha = 1.0 - confidence;
  return Interval{percentile(means, alpha / 2.0),
                  percentile(means, 1.0 - alpha / 2.0)};
}

}  // namespace byz::util
