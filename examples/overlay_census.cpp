// Overlay census: the motivating scenario of the paper's introduction — a
// peer-to-peer overlay wants to know its own size, but some peers are
// malicious. Compares the classical estimators (which the paper shows are
// broken by a single Byzantine node) against Algorithm 2, on the same
// sampled overlay.
//
//   $ ./overlay_census [--n=8192] [--d=8] [--delta=0.6] [--seed=3]
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

namespace {

using namespace byz;

/// Renders an estimate of log2(n) against the truth as "value (xN off)".
std::string grade(double est_log, double true_log) {
  if (est_log <= 0.0) return "no estimate";
  const double off = est_log / true_log;
  return util::format_double(est_log, 2) + "  (" +
         util::format_double(off, 2) + "x of log2 n)";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("overlay_census",
                       "classical estimators vs Algorithm 2 under attack");
  args.add_option("n", "network size", "8192");
  args.add_option("d", "H-degree", "8");
  args.add_option("delta", "Byzantine exponent", "0.6");
  args.add_option("seed", "trial seed", "3");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<graph::NodeId>(args.integer("n"));
  const auto d = static_cast<std::uint32_t>(args.integer("d"));
  const double delta = args.real("delta");
  const auto seed = static_cast<std::uint64_t>(args.integer("seed"));
  const double true_log = std::log2(static_cast<double>(n));

  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  const auto overlay = graph::Overlay::build(params);
  util::Xoshiro256 rng(seed ^ 0xB12);
  const auto byz =
      graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);

  util::Table table("Census of an overlay with " +
                    std::to_string(sim::derive_byz_count(n, delta)) +
                    " Byzantine peers (n=" + std::to_string(n) + ")");
  table.columns({"estimator", "clean network", "under attack", "verdict"});

  {  // Geometric max-flood (§1.2).
    const std::vector<bool> none(n, false);
    const auto clean =
        base::run_geometric_support(overlay.h_simple(), none,
                                    base::FloodAttack::kNone, 64, seed);
    const auto hit =
        base::run_geometric_support(overlay.h_simple(), byz,
                                    base::FloodAttack::kInflate, 64, seed);
    table.row()
        .cell("geometric max-flood")
        .cell(grade(clean.estimate[0], true_log))
        .cell(grade(hit.estimate[0], true_log))
        .cell("destroyed");
  }
  {  // Exponential support estimation.
    const std::vector<bool> none(n, false);
    const auto clean = base::run_exponential_support(
        overlay.h_simple(), none, base::FloodAttack::kNone, 32, 64, seed);
    const auto hit = base::run_exponential_support(
        overlay.h_simple(), byz, base::FloodAttack::kInflate, 32, 64, seed);
    table.row()
        .cell("exponential support")
        .cell(grade(std::log2(clean.estimate[0]), true_log))
        .cell(grade(std::log2(hit.estimate[0]), true_log))
        .cell("destroyed");
  }
  {  // Spanning-tree converge-cast.
    const std::vector<bool> none(n, false);
    const auto clean = base::run_spanning_tree_count(overlay.h_simple(), none,
                                                     0, base::TreeAttack::kNone);
    const auto hit = base::run_spanning_tree_count(
        overlay.h_simple(), byz, 0, base::TreeAttack::kInflate);
    table.row()
        .cell("spanning-tree count")
        .cell(grade(std::log2(static_cast<double>(clean.root_count)), true_log))
        .cell(grade(std::log2(static_cast<double>(hit.root_count)), true_log))
        .cell("destroyed");
  }
  {  // Algorithm 2 under the strongest combined attack.
    auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    const auto run =
        proto::run_counting(overlay, byz, *strategy, cfg, seed ^ 0xC01);
    const auto acc = proto::summarize_accuracy(run, n);
    // A clean reference run.
    const auto clean_run = proto::run_basic_counting(overlay, seed ^ 0xC02);
    const auto clean_acc = proto::summarize_accuracy(clean_run, n);
    table.row()
        .cell("Algorithm 2 (this paper)")
        .cell(util::format_double(clean_acc.mean_ratio, 2) + "x of log2 n")
        .cell(util::format_double(acc.mean_ratio, 2) + "x of log2 n, " +
              util::format_double(100.0 * acc.frac_in_band, 1) +
              "% of honest nodes in band")
        .cell("survives");
  }
  table.note("Attack: Byzantine peers inject an absurd maximum (or minimum) "
             "into each estimator; Algorithm 2 additionally faces its "
             "fake-color adversary.");
  std::cout << table;
  return 0;
}
