// Size service: the full production pipeline a P2P deployment would run —
//   Algorithm 2  →  model-aware refinement  →  one median-smoothing round
// — turning "a constant-factor estimate of log n at most honest nodes"
// into "log n ± O(1), agreed almost everywhere", while Byzantine peers
// attack every stage (fake colors during the protocol, inflated values
// during smoothing).
//
//   $ ./size_service [--n=16384] [--d=8] [--delta=0.5] [--seed=11]
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

int main(int argc, char** argv) {
  using namespace byz;

  util::ArgParser args("size_service", "estimate -> refine -> agree");
  args.add_option("n", "network size", "16384");
  args.add_option("d", "H-degree", "8");
  args.add_option("delta", "Byzantine exponent", "0.5");
  args.add_option("seed", "trial seed", "11");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<graph::NodeId>(args.integer("n"));
  const auto d = static_cast<std::uint32_t>(args.integer("d"));
  const double delta = args.real("delta");
  const auto seed = static_cast<std::uint64_t>(args.integer("seed"));
  const double truth = std::log2(static_cast<double>(n));

  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  const auto overlay = graph::Overlay::build(params);
  util::Xoshiro256 rng(seed ^ 0xB12);
  const auto byz =
      graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);

  // Stage 1: Byzantine counting (Algorithm 2) under the fake-color attack.
  const auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  proto::ProtocolConfig cfg;
  const auto run = proto::run_counting(overlay, byz, *strategy, cfg, seed);
  const auto raw = proto::summarize_accuracy(run, n);

  // Stage 2: model-aware refinement l_{i*-2}.
  const auto refined = proto::refine_run(run, d);
  const auto racc = proto::summarize_refined(refined, byz, n);

  // Stage 3: median smoothing over direct channels; Byzantine neighbors
  // respond with absurd inflation.
  const auto smoothed = proto::smooth_estimates(overlay, byz, refined,
                                                proto::EstimateLie::kInflate);
  const auto sacc = proto::summarize_refined(smoothed, byz, n);

  util::Table table("Size service pipeline (truth: log2 n = " +
                    util::format_double(truth, 2) + ", B = " +
                    std::to_string(sim::derive_byz_count(n, delta)) + ")");
  table.columns({"stage", "mean est (log2)", "ratio to truth", "spread (sd)",
                 "coverage"});
  table.row()
      .cell("1. Algorithm 2 phase i*")
      .cell(raw.mean_ratio * truth, 2)
      .cell(raw.mean_ratio, 3)
      .cell("-")
      .cell(util::format_double(100.0 * raw.frac_in_band, 1) + "% in band");
  table.row()
      .cell("2. refined l_{i*-2}")
      .cell(racc.mean_ratio * truth, 2)
      .cell(racc.mean_ratio, 3)
      .cell(racc.stddev_ratio, 3)
      .cell(std::to_string(racc.with_estimate) + " nodes");
  table.row()
      .cell("3. median-smoothed")
      .cell(sacc.mean_ratio * truth, 2)
      .cell(sacc.mean_ratio, 3)
      .cell(sacc.stddev_ratio, 3)
      .cell(std::to_string(sacc.with_estimate) + " nodes");
  table.note("Stage 3's adversary: every Byzantine G-neighbor reports a 10^6 "
             "estimate during smoothing; the neighborhood median ignores it.");
  std::cout << table;
  return 0;
}
